"""Conversion-drift monitoring: per-layer DNN↔SNN gap as time series.

The paper's error model (Eqs. 6-7) budgets conversion quality layer by
layer; :func:`repro.conversion.diagnose_conversion` computes that budget
once.  :class:`DriftMonitor` turns it into telemetry: every call to
:meth:`snapshot` re-diagnoses the converted network against the source
DNN on a pinned evaluation batch and records, per layer,

- the predicted gap ``Delta_{alpha beta}`` and the skew indicators
  ``K(mu)`` / ``h(T, mu)`` from the analytical model, and
- the *measured* mean output gap on real data,

as gauges in the metrics registry (``conversion.drift.*{layer=i}``) and
as one JSONL record per layer in the run directory's ``drift.jsonl``.
Snapshots are labelled with a phase (``post_conversion``,
``post_calibration``, ``epoch``...) and a monotonically increasing
snapshot index, so calibration and SGL fine-tuning leave a per-layer
drift trajectory that ``repro.obs.report`` renders as the
"Conversion drift" section.
"""

from __future__ import annotations

import json
import os
import time
from typing import IO, Iterable, List, Optional, Tuple

import numpy as np

from . import metrics as obs_metrics
from . import trace
from .core import _STATE, is_enabled
from .metrics import MetricsRegistry

DRIFT_FILENAME = "drift.jsonl"


class DriftMonitor:
    """Records per-layer conversion drift across a run.

    Parameters
    ----------
    conversion:
        A :class:`repro.conversion.ConversionResult` (stats+specs+snn).
    model:
        The source DNN the SNN was converted from.
    batches:
        Evaluation batches ``(images, labels)``; the first
        ``max_batches`` are concatenated once and pinned, so every
        snapshot diagnoses against the same data.
    registry:
        Metrics registry to gauge into (default: the global one).
    run_dir:
        Directory for ``drift.jsonl`` (default: the active observed
        run's directory, if any; ``None`` keeps records in memory only).
    prefix:
        Metric-name prefix (default ``conversion.drift``).
    """

    def __init__(
        self,
        conversion,
        model,
        batches: Iterable[Tuple[np.ndarray, np.ndarray]],
        max_batches: int = 1,
        registry: Optional[MetricsRegistry] = None,
        run_dir: Optional[str] = None,
        prefix: str = "conversion.drift",
    ) -> None:
        self.conversion = conversion
        self.model = model
        self.prefix = prefix
        self.registry = registry if registry is not None else obs_metrics.get_registry()
        self._global_registry = registry is None
        self.snapshots: List[dict] = []
        self._snapshot_index = 0
        images = []
        for index, (batch, _labels) in enumerate(batches):
            if index >= max_batches:
                break
            images.append(np.asarray(batch))
        if not images:
            raise ValueError("no evaluation batches provided")
        self._images = np.concatenate(images, axis=0)
        self._labels = np.zeros(len(self._images), dtype=int)
        if run_dir is None:
            run_dir = _STATE.run_dir
        self.run_dir = run_dir
        self._fp: Optional[IO[str]] = None
        if run_dir is not None:
            os.makedirs(run_dir, exist_ok=True)
            self._fp = open(
                os.path.join(run_dir, DRIFT_FILENAME), "a", encoding="utf-8"
            )

    # ------------------------------------------------------------------
    def snapshot(self, phase: str, **fields) -> List:
        """Diagnose the conversion now; record one drift point per layer.

        Returns the underlying :class:`LayerErrorReport` list.  Extra
        ``fields`` (e.g. ``epoch=3``) are merged into every JSONL record
        of this snapshot.
        """
        from ..conversion.diagnostics import diagnose_conversion

        with trace.span(f"{self.prefix}.snapshot", phase=phase):
            reports = diagnose_conversion(
                self.conversion,
                self.model,
                [(self._images, self._labels)],
                max_batches=1,
            )
        index = self._snapshot_index
        self._snapshot_index += 1
        now = time.time()
        write_metrics = self._record_metrics()
        for report in reports:
            record = {
                "kind": "drift",
                "ts": now,
                "phase": phase,
                "snapshot": index,
                **fields,
                **report.as_dict(),
            }
            self.snapshots.append(record)
            if self._fp is not None:
                self._fp.write(json.dumps(record) + "\n")
            if write_metrics:
                layer = report.layer
                self.registry.set_gauge(
                    f"{self.prefix}.predicted_gap", report.predicted_gap, layer=layer
                )
                self.registry.set_gauge(
                    f"{self.prefix}.measured_gap", report.measured_gap, layer=layer
                )
                self.registry.set_gauge(
                    f"{self.prefix}.k_mu", report.k_mu, layer=layer
                )
                self.registry.set_gauge(
                    f"{self.prefix}.h_t_mu", report.h_t_mu, layer=layer
                )
        if self._fp is not None:
            self._fp.flush()
        return reports

    def _record_metrics(self) -> bool:
        # An explicit registry always records; the global one only while
        # observability is enabled (same contract as the instruments).
        return not self._global_registry or is_enabled()

    def worst(self, phase: Optional[str] = None) -> Optional[dict]:
        """Latest-snapshot record with the largest ``|measured_gap|``.

        Restricted to ``phase`` when given, otherwise to the most recent
        snapshot index seen.
        """
        records = self.snapshots
        if phase is not None:
            records = [r for r in records if r["phase"] == phase]
        if not records:
            return None
        latest = max(r["snapshot"] for r in records)
        records = [r for r in records if r["snapshot"] == latest]
        return max(records, key=lambda r: abs(r["measured_gap"]))

    def close(self) -> None:
        if self._fp is not None:
            self._fp.close()
            self._fp = None

    def __enter__(self) -> "DriftMonitor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
