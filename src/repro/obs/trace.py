"""Tracing spans: nested wall-clock timing exported as a JSONL timeline.

Usage::

    from repro.obs import trace

    with trace.span("algorithm1", layer=i) as sp:
        factors = find_scaling_factors(...)
        sp.set(alpha=factors.alpha, beta=factors.beta)

Spans nest: each carries its parent's id and its depth, so the timeline
file reconstructs into a tree (children are written *before* their
parent because a span is emitted when it closes).  When observability
is disabled :func:`span` returns a shared no-op singleton — no
allocation, no clock reads — keeping instrumented hot paths free.
"""

from __future__ import annotations

import time
from typing import List, Optional

from .core import _STATE, emit_span

_SPAN_COUNTER = 0
_stack: List["Span"] = []


class _NullSpan:
    """Shared do-nothing span returned while observability is off."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info) -> bool:
        return False

    def set(self, **fields) -> None:
        pass


NULL_SPAN = _NullSpan()


class Span:
    """One timed, named region of the run."""

    __slots__ = (
        "name", "fields", "span_id", "parent_id", "depth",
        "started_at", "_t0", "duration_s",
    )

    def __init__(self, name: str, fields: dict) -> None:
        self.name = name
        self.fields = fields
        self.span_id: Optional[int] = None
        self.parent_id: Optional[int] = None
        self.depth = 0
        self.started_at = 0.0
        self._t0 = 0.0
        self.duration_s: Optional[float] = None

    def set(self, **fields) -> None:
        """Attach result fields to the span before it closes."""
        self.fields.update(fields)

    def __enter__(self) -> "Span":
        global _SPAN_COUNTER
        _SPAN_COUNTER += 1
        self.span_id = _SPAN_COUNTER
        parent = _stack[-1] if _stack else None
        self.parent_id = parent.span_id if parent is not None else None
        self.depth = len(_stack)
        self.started_at = time.time()
        self._t0 = time.perf_counter()
        _stack.append(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.duration_s = time.perf_counter() - self._t0
        if _stack and _stack[-1] is self:
            _stack.pop()
        record = {
            "kind": "span",
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "depth": self.depth,
            "started_at": self.started_at,
            "duration_s": self.duration_s,
            "status": "error" if exc_type is not None else "ok",
        }
        if exc_type is not None:
            record["error"] = {
                "type": exc_type.__name__,
                "message": str(exc),
            }
        if self.fields:
            record["fields"] = dict(self.fields)
        emit_span(record)
        return False


def span(name: str, **fields):
    """Open a span named ``name`` (a no-op when disabled)."""
    if not _STATE.enabled:
        return NULL_SPAN
    return Span(name, fields)


def current_span() -> Optional[Span]:
    """The innermost open span, or ``None``."""
    return _stack[-1] if _stack else None


def reset(counter: bool = False) -> None:
    """Clear the span stack (test isolation after exceptions).

    ``counter=True`` also rewinds the span-id counter — used by worker
    telemetry capture, where ids inherited across ``fork`` are
    meaningless (the merge renumbers them deterministically anyway).
    """
    global _SPAN_COUNTER
    _stack.clear()
    if counter:
        _SPAN_COUNTER = 0
