"""Cross-process telemetry for the parallel executor.

PR 9's workers quiesce every observability channel, so an observed run
goes dark the moment it fans out.  This module replaces quiescing with
**capture** when the parent run is observed: a worker-side
:class:`TelemetryBuffer` intercepts events, completed spans, metric
deltas, health alerts, fault events and (opt-in) profiler ops, tags
them with ``(worker_id, pid, task_index, seq)``, and ships them back to
the parent — piggybacked on the per-worker result pipe, with a
side-channel ``worker-<id>.jsonl`` shard per worker as the crash-durable
copy.  The parent-side :class:`MapTelemetry` merges everything in fixed
``(task_index, seq)`` order.

Determinism contract
--------------------
The merged canonical stream (``worker_telemetry.jsonl``) is **bitwise
deterministic across reruns and worker counts** for a deterministic
workload:

- capture is scoped to task execution (``begin_task``/``end_task``);
  per-worker setup (initializers, lazy dataset builds under
  :class:`repro.obs.core.suspend_capture`) never enters the stream, so
  one worker and eight workers capture the same records;
- ``seq`` restarts at 0 per task and the merge orders by
  ``(task_index, seq)``, erasing scheduling order;
- volatile fields (timestamps, durations, pids, worker ids, attempt
  numbers) are stripped from the canonical lines, and span ids are
  renumbered per task by first appearance.

The *full-fidelity* records (with wall-clock timings and ids) are not
discarded: spans are stitched into the parent's ``trace.jsonl`` under
the dispatching ``exec.map`` span, metric deltas are replayed into the
parent registry, alerts land in ``alerts.jsonl``, fault events in
``faults.jsonl``, and profiler ops join ``profile.jsonl`` with a
``worker`` tag that becomes a per-process lane in the Chrome-trace
export.  Aggregate counters therefore equal a serial observed run's.

The serial path uses the same machinery as a *tee* (records are
mirrored into the canonical stream but continue down the normal
in-process path), so ``workers=1`` and ``workers=4`` produce the same
``worker_telemetry.jsonl`` bytes.
"""

from __future__ import annotations

import fnmatch
import json
import os
import time
from dataclasses import dataclass, field
from typing import Any, Dict, IO, List, Optional

from . import core, health, trace
from . import metrics as obs_metrics
from . import profile as profile_mod
from .core import _json_default

SCHEMA_VERSION = 1
#: Canonical merged stream (bitwise deterministic, see module docstring).
MERGED_FILENAME = "worker_telemetry.jsonl"
#: Per-worker crash-durable shard files, written in the run directory.
SHARD_PATTERN = "worker-*.jsonl"

#: Fields that legitimately differ between runs/workers; stripped from
#: canonical lines (the replayed full-fidelity records keep them).
_VOLATILE_KEYS = frozenset(
    {"ts", "started_at", "duration_s", "dt_s", "t_s", "pid", "worker", "attempt"}
)

#: Telemetry capture record kinds.
KINDS = ("event", "span", "metric", "alert", "fault")


def shard_filename(worker_id: int) -> str:
    return f"worker-{int(worker_id)}.jsonl"


# ----------------------------------------------------------------------
# Envelope: what a worker needs to capture one map's telemetry
# ----------------------------------------------------------------------
@dataclass
class TelemetryEnvelope:
    """Per-map capture parameters serialized into each worker.

    Carries the parent's active span context (``dispatch_span_id`` /
    ``dispatch_depth``) so worker spans stitch under the dispatching
    ``exec.map`` span, plus the run identity/context that makes child
    records indistinguishable from parent ones.
    """

    run_id: str = ""
    context: Dict[str, Any] = field(default_factory=dict)
    map_id: int = 0
    dispatch_span_id: Optional[int] = None
    dispatch_depth: int = 0
    profile: bool = False
    shard_dir: Optional[str] = None

    def as_dict(self) -> Dict[str, Any]:
        return {
            "run_id": self.run_id,
            "context": dict(self.context),
            "map_id": self.map_id,
            "dispatch_span_id": self.dispatch_span_id,
            "dispatch_depth": self.dispatch_depth,
            "profile": self.profile,
            "shard_dir": self.shard_dir,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "TelemetryEnvelope":
        return cls(
            run_id=str(data.get("run_id") or ""),
            context=dict(data.get("context") or {}),
            map_id=int(data.get("map_id") or 0),
            dispatch_span_id=data.get("dispatch_span_id"),
            dispatch_depth=int(data.get("dispatch_depth") or 0),
            profile=bool(data.get("profile")),
            shard_dir=data.get("shard_dir"),
        )


# ----------------------------------------------------------------------
# Worker-side buffer
# ----------------------------------------------------------------------
class TelemetryBuffer:
    """Capture sink for one worker process (or the serial tee).

    In ``consume`` mode (executor workers) every offered record is
    swallowed — a forked child must never write the parent's files —
    buffered for the piggyback payload, and streamed to this worker's
    shard file.  With ``consume=False`` (the parent's serial tee)
    records are only mirrored for the canonical stream and continue
    down the normal in-process path.
    """

    def __init__(
        self,
        envelope: TelemetryEnvelope,
        worker_id: int,
        consume: bool = True,
    ) -> None:
        self.envelope = envelope
        self.worker_id = int(worker_id)
        self.pid = os.getpid()
        self.consume = consume
        self._task: Optional[int] = None
        self._attempt = 0
        self._seq = 0
        self._t0 = 0.0
        self._records: List[dict] = []
        self._profiler: Optional[profile_mod.OpProfiler] = None
        self._profile_mark = 0
        self._fp: Optional[IO[str]] = None
        self._shard_failed = False

    # -- capture --------------------------------------------------------
    def sink(self, kind: str, data: dict) -> bool:
        """Offer one record; returns whether it was consumed."""
        if self._task is not None and not core.capture_suspended():
            record = {"seq": self._seq, "kind": kind, "data": data}
            self._seq += 1
            self._records.append(record)
            self._write_shard(record)
        return self.consume

    def metric_journal(self, op: dict) -> None:
        """Registry ``_journal`` hook (metric deltas enter the stream)."""
        self.sink("metric", op)

    # -- task scoping ---------------------------------------------------
    def begin_task(self, index: int, attempt: int) -> None:
        self._task = int(index)
        self._attempt = int(attempt)
        self._seq = 0
        self._records = []
        if self._profiler is not None:
            self._profile_mark = len(self._profiler.records)
        self._t0 = time.perf_counter()

    def end_task(self, status: str = "ok") -> dict:
        """Close the current task and return its piggyback payload."""
        duration = time.perf_counter() - self._t0
        profile_records: List[dict] = []
        if self._profiler is not None:
            for record in self._profiler.records[self._profile_mark :]:
                profile_records.append(
                    {
                        **record,
                        "worker": self.worker_id,
                        "pid": self.pid,
                        "task": self._task,
                    }
                )
        payload = {
            "schema": SCHEMA_VERSION,
            "map": self.envelope.map_id,
            "worker": self.worker_id,
            "pid": self.pid,
            "task": self._task,
            "attempt": self._attempt,
            "status": status,
            "duration_s": duration,
            "records": self._records,
            "profile": profile_records,
        }
        if not self.consume:
            # Tee records already followed the normal in-process path;
            # the merge must not replay them a second time.
            payload["direct"] = True
        self._task = None
        self._records = []
        return payload

    # -- shard side-channel --------------------------------------------
    def _write_shard(self, record: dict) -> None:
        if not self.consume or self.envelope.shard_dir is None:
            return
        if self._fp is None:
            if self._shard_failed:
                return
            try:
                os.makedirs(self.envelope.shard_dir, exist_ok=True)
                self._fp = open(
                    os.path.join(
                        self.envelope.shard_dir, shard_filename(self.worker_id)
                    ),
                    "a",
                    encoding="utf-8",
                )
            except OSError:
                # Piggyback transport still works; the side channel is
                # best-effort (recovery only).
                self._shard_failed = True
                return
        line = {
            "schema": SCHEMA_VERSION,
            "map": self.envelope.map_id,
            "worker": self.worker_id,
            "pid": self.pid,
            "task": self._task,
            "attempt": self._attempt,
            **record,
        }
        self._fp.write(json.dumps(line, default=_json_default) + "\n")
        self._fp.flush()

    def tear_shard(self) -> None:
        """Leave a deliberately torn (half-written, newline-less) record
        at the shard tail — the chaos harness calls this right before
        ``os._exit`` to model a worker killed mid-telemetry-write."""
        if self._fp is None:
            return
        line = json.dumps(
            {
                "schema": SCHEMA_VERSION,
                "map": self.envelope.map_id,
                "worker": self.worker_id,
                "task": self._task,
                "seq": self._seq,
                "kind": "event",
                "data": {"torn": True},
            }
        )
        self._fp.write(line[: max(1, len(line) // 2)])
        self._fp.flush()

    def close(self) -> None:
        if self._fp is not None:
            self._fp.close()
            self._fp = None


def install_worker_capture(
    envelope: TelemetryEnvelope, worker_id: int
) -> TelemetryBuffer:
    """Turn this (child) process's observability into capture mode.

    Called from the worker bootstrap *after* the quiesce step cleared
    inherited sinks: re-enables the obs state with the parent's run
    identity/context but no files, resets the span stack/counter and
    metrics registry, installs the buffer as the capture sink and
    metric journal, gives the child its own memory-backed
    :class:`HealthMonitor`, and (opt-in) starts a memory-backed op
    profiler.
    """
    profile_mod.quiesce_forked()
    trace.reset(counter=True)
    state = core.state()
    state.enabled = True
    state.run_dir = None
    state.run_id = envelope.run_id or None
    state.context = dict(envelope.context)
    state.events = []
    state.spans = []
    state._events_fp = None
    state._trace_fp = None
    obs_metrics.reset_registry()
    buffer = TelemetryBuffer(envelope, worker_id, consume=True)
    obs_metrics.get_registry()._journal = buffer.metric_journal
    core.set_capture_sink(buffer.sink)
    health.install(health.HealthMonitor(run_dir=None))
    if envelope.profile:
        profiler = profile_mod.OpProfiler(path=None)
        profiler.__enter__()
        buffer._profiler = profiler
    return buffer


# ----------------------------------------------------------------------
# Canonicalization (shared by serial tee and worker merge)
# ----------------------------------------------------------------------
def _clean(data: dict) -> dict:
    out = {k: v for k, v in data.items() if k not in _VOLATILE_KEYS}
    fields = out.get("fields")
    if isinstance(fields, dict):
        out["fields"] = {
            k: v for k, v in fields.items() if k not in _VOLATILE_KEYS
        }
    return out


def _seq_key(record: dict):
    seq = record.get("seq")
    return (not isinstance(seq, int), seq if isinstance(seq, int) else 0)


def canonical_lines(map_id: int, task: int, records: List[dict]) -> List[dict]:
    """The canonical (volatile-stripped, renumbered) lines for one task.

    Span ids are replaced by per-task ordinals assigned in order of
    first appearance; a parent id that does not resolve within the task
    (the worker's top level, or the serial path's enclosing spans) maps
    to the sentinel ``"dispatch"`` — both modes produce identical
    bytes.
    """
    ordered = sorted(
        (r for r in records if isinstance(r.get("data"), dict)), key=_seq_key
    )
    idmap: Dict[Any, int] = {}
    for record in ordered:
        if record.get("kind") == "span":
            span_id = record["data"].get("span_id")
            if span_id is not None and span_id not in idmap:
                idmap[span_id] = len(idmap)
    lines = []
    for record in ordered:
        data = _clean(record["data"])
        if record.get("kind") == "span":
            span_id = record["data"].get("span_id")
            parent_id = record["data"].get("parent_id")
            data.pop("span_id", None)
            data.pop("parent_id", None)
            data.pop("depth", None)
            data["sid"] = idmap.get(span_id)
            data["parent"] = (
                idmap[parent_id] if parent_id in idmap else "dispatch"
            )
        lines.append(
            {
                "map": map_id,
                "task": task,
                "seq": record.get("seq"),
                "kind": record.get("kind"),
                "data": data,
            }
        )
    return lines


# ----------------------------------------------------------------------
# Parent-side merge
# ----------------------------------------------------------------------
_MAP_SEQ = {"run": None, "n": 0}


def _next_map_id(run_id: Optional[str]) -> int:
    """Per-run map counter: deterministic because maps are issued in
    program order regardless of worker count."""
    if _MAP_SEQ["run"] != run_id:
        _MAP_SEQ["run"] = run_id
        _MAP_SEQ["n"] = 0
    _MAP_SEQ["n"] += 1
    return _MAP_SEQ["n"]


class MapTelemetry:
    """Parent-side telemetry plan for one observed ``map`` call.

    Owns the envelope shipped to workers, collects the per-task
    piggyback payloads (preferring a successful attempt), recovers
    tasks whose worker died before the piggyback from the shard files,
    and performs the deterministic merge.
    """

    def __init__(self, label: str) -> None:
        state = core.state()
        self.label = label
        self.run_dir = state.run_dir
        self.map_id = _next_map_id(state.run_id)
        self.envelope = TelemetryEnvelope(
            run_id=state.run_id or "",
            context=dict(state.context),
            map_id=self.map_id,
            profile=profile_mod.session_active(),
            shard_dir=state.run_dir,
        )
        self.payloads: Dict[int, dict] = {}
        self._tee: Optional[TelemetryBuffer] = None
        self.merged: Optional[dict] = None

    # -- wiring ---------------------------------------------------------
    def set_dispatch(self, span_id: Optional[int], depth: int) -> None:
        self.envelope.dispatch_span_id = span_id
        self.envelope.dispatch_depth = int(depth)

    def envelope_dict(self) -> Dict[str, Any]:
        return self.envelope.as_dict()

    # -- payload collection --------------------------------------------
    @staticmethod
    def _better(new: dict, old: dict) -> bool:
        ok_new = new.get("status") == "ok"
        ok_old = old.get("status") == "ok"
        if ok_new != ok_old:
            return ok_new
        return (new.get("attempt") or 0) >= (old.get("attempt") or 0)

    def offer(self, payload: Any) -> None:
        """Adopt one worker payload (later/successful attempts win)."""
        if not isinstance(payload, dict):
            return
        task = payload.get("task")
        if not isinstance(task, int):
            return
        current = self.payloads.get(task)
        if current is None or self._better(payload, current):
            self.payloads[task] = payload

    # -- serial tee ------------------------------------------------------
    def tee_begin(self, index: int, attempt: int) -> None:
        """Start capturing one serially executed task in-process."""
        if self._tee is None:
            self._tee = TelemetryBuffer(self.envelope, worker_id=0, consume=False)
            core.set_capture_sink(self._tee.sink)
            obs_metrics.get_registry()._journal = self._tee.metric_journal
        self._tee.begin_task(index, attempt)

    def tee_end(self, status: str = "ok") -> None:
        if self._tee is not None:
            self.offer(self._tee.end_task(status))

    def tee_close(self) -> None:
        if self._tee is not None:
            core.set_capture_sink(None)
            obs_metrics.get_registry()._journal = None
            self._tee = None

    # -- shard recovery --------------------------------------------------
    def recover_from_shards(self) -> int:
        """Rebuild payloads for tasks with no piggyback from the shard
        files (worker died mid-task).  Torn tails and absent shards are
        tolerated: unparseable lines are skipped, missing files simply
        contribute nothing."""
        if self.run_dir is None or not os.path.isdir(self.run_dir):
            return 0
        groups: Dict[int, Dict[int, dict]] = {}
        for name in sorted(os.listdir(self.run_dir)):
            if not fnmatch.fnmatch(name, SHARD_PATTERN):
                continue
            try:
                with open(os.path.join(self.run_dir, name), encoding="utf-8") as fp:
                    raw = fp.read()
            except OSError:
                continue
            for line in raw.splitlines():
                line = line.strip()
                if not line:
                    continue
                try:
                    entry = json.loads(line)
                except json.JSONDecodeError:
                    continue  # torn tail / corrupt frame
                if not isinstance(entry, dict) or entry.get("map") != self.map_id:
                    continue
                task, attempt, seq = (
                    entry.get("task"), entry.get("attempt"), entry.get("seq"),
                )
                if not all(isinstance(v, int) for v in (task, attempt, seq)):
                    continue
                slot = groups.setdefault(task, {}).setdefault(
                    attempt,
                    {
                        "worker": entry.get("worker"),
                        "pid": entry.get("pid"),
                        "records": [],
                    },
                )
                slot["records"].append(
                    {"seq": seq, "kind": entry.get("kind"), "data": entry.get("data")}
                )
        recovered = 0
        for task, attempts in groups.items():
            if task in self.payloads:
                continue
            attempt = max(attempts)
            slot = attempts[attempt]
            self.payloads[task] = {
                "schema": SCHEMA_VERSION,
                "map": self.map_id,
                "worker": slot["worker"],
                "pid": slot["pid"],
                "task": task,
                "attempt": attempt,
                "status": "recovered",
                "records": sorted(slot["records"], key=_seq_key),
                "profile": [],
            }
            recovered += 1
        return recovered

    # -- merge -----------------------------------------------------------
    def merge(self) -> dict:
        """Write the canonical stream and replay full-fidelity records.

        Tasks are merged in ascending index, records in ``seq`` order.
        Tee payloads (``direct``) already flowed through the normal
        path and only contribute canonical lines; worker payloads are
        additionally replayed: metric deltas into the registry, events
        into ``events.jsonl``, stitched spans into ``trace.jsonl``,
        alerts through the active monitor, fault events into
        ``faults.jsonl``, profiler ops into the profile session.
        """
        self.tee_close()
        recovered = self.recover_from_shards()
        stats = {
            "tasks": len(self.payloads),
            "records": 0,
            "recovered": recovered,
            "spans": 0,
            "events": 0,
            "metrics": 0,
            "alerts": 0,
            "faults": 0,
            "profile": 0,
        }
        merged_fp: Optional[IO[str]] = None
        faults_fp: Optional[IO[str]] = None
        if self.run_dir is not None:
            os.makedirs(self.run_dir, exist_ok=True)
            # A run's first map truncates: re-tracing into the same run
            # directory must produce identical bytes, not accumulate.
            merged_fp = open(
                os.path.join(self.run_dir, MERGED_FILENAME),
                "w" if self.map_id == 1 else "a",
                encoding="utf-8",
            )
        try:
            for task in sorted(self.payloads):
                payload = self.payloads[task]
                records = sorted(
                    (
                        r
                        for r in (payload.get("records") or [])
                        if isinstance(r, dict) and isinstance(r.get("data"), dict)
                    ),
                    key=_seq_key,
                )
                stats["records"] += len(records)
                if merged_fp is not None:
                    for line in canonical_lines(self.map_id, task, records):
                        merged_fp.write(
                            json.dumps(line, sort_keys=True, default=_json_default)
                            + "\n"
                        )
                if payload.get("direct"):
                    continue
                faults_fp = self._replay(payload, records, stats, faults_fp)
        finally:
            if merged_fp is not None:
                merged_fp.flush()
                merged_fp.close()
            if faults_fp is not None:
                faults_fp.flush()
                faults_fp.close()
        if self.run_dir is not None:
            # Shards are recovery-only and this merge consumed them;
            # removing them keeps stale lines out of a later run's
            # recovery scan (map ids restart per run).
            try:
                names = sorted(os.listdir(self.run_dir))
            except OSError:
                names = []
            for name in names:
                if fnmatch.fnmatch(name, SHARD_PATTERN):
                    try:
                        os.remove(os.path.join(self.run_dir, name))
                    except OSError:
                        pass
        self.merged = stats
        return stats

    def _replay(
        self,
        payload: dict,
        records: List[dict],
        stats: dict,
        faults_fp: Optional[IO[str]],
    ) -> Optional[IO[str]]:
        registry = obs_metrics.get_registry()
        monitor = health.active()
        dispatch_id = self.envelope.dispatch_span_id
        task = payload.get("task")
        idmap: Dict[Any, str] = {}
        for record in records:
            if record.get("kind") == "span":
                span_id = record["data"].get("span_id")
                if span_id is not None and span_id not in idmap:
                    idmap[span_id] = f"w{self.map_id}.{task}.{len(idmap)}"
        for record in records:
            kind = record.get("kind")
            data = record["data"]
            if kind == "metric":
                obs_metrics.apply_metric_op(registry, data)
                stats["metrics"] += 1
            elif kind == "event":
                core.emit_event(dict(data))
                stats["events"] += 1
            elif kind == "span":
                stitched = dict(data)
                old_parent = stitched.get("parent_id")
                stitched["span_id"] = idmap.get(stitched.get("span_id"))
                stitched["parent_id"] = idmap.get(old_parent, dispatch_id)
                try:
                    child_depth = int(stitched.get("depth") or 0)
                except (TypeError, ValueError):
                    child_depth = 0
                stitched["depth"] = self.envelope.dispatch_depth + 1 + child_depth
                stitched["worker"] = payload.get("worker")
                stitched["pid"] = payload.get("pid")
                stitched["task"] = task
                core.emit_span(stitched)
                stats["spans"] += 1
            elif kind == "alert":
                if monitor is not None:
                    monitor.ingest(dict(data))
                stats["alerts"] += 1
            elif kind == "fault":
                if self.run_dir is not None:
                    if faults_fp is None:
                        faults_fp = open(
                            os.path.join(self.run_dir, "faults.jsonl"),
                            "a",
                            encoding="utf-8",
                        )
                    faults_fp.write(json.dumps(data, default=_json_default) + "\n")
                stats["faults"] += 1
        stats["profile"] += profile_mod.ingest_records(payload.get("profile") or [])
        return faults_fp
