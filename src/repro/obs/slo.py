"""Streaming SLO layer: per-window service objectives over a stream run.

A batch run is judged once, at the end; a streaming deployment is
judged continuously.  :class:`SloTracker` consumes one record per
processed stream window (wall-clock latency, result staleness,
window accuracy, spike traffic) and maintains the operational view:

- sliding-window aggregates in the metrics registry
  (``slo.window_latency_s`` / ``slo.staleness_s`` / ``slo.accuracy`` /
  ``slo.throughput_fps`` windows, ``slo.spikes_per_frame`` gauge,
  ``slo.windows`` / ``slo.frames`` counters) — recent-past quantiles,
  which is what an SLO means;
- one schema-versioned JSONL record per window in ``slo.jsonl``
  (plus one ``kind: "breach"`` record per objective violation), the
  stream twin of ``drift.jsonl`` / ``profile.jsonl``;
- SLO-breach alerts through the existing :class:`HealthMonitor` /
  ``alerts.jsonl`` path (rule ``slo_breach``), re-armed once per
  pathological stretch so a sustained burst yields one alert per
  objective, not one per window;
- ``slo_summary.json`` at :meth:`close` — lifetime p50/p95/p99
  latency and staleness, overall and final sliding accuracy, and
  breach counts per objective.  This is the artefact the canary gate
  diffs.

Latency and staleness targets auto-calibrate when not given: the first
``calibration_windows`` windows establish a median, and the target is
``target_factor`` times it — a self-relative SLO that ports across
hosts of very different speeds (CI runners vs. laptops) without
hand-tuned absolute milliseconds.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass
from typing import Dict, List, Optional

from . import health as obs_health
from . import metrics as obs_metrics
from .core import _STATE, is_enabled
from .metrics import Histogram, MetricsRegistry

SLO_SCHEMA = "repro.obs.slo/v1"
SLO_SCHEMA_VERSION = 1
SLO_FILENAME = "slo.jsonl"
SLO_SUMMARY_FILENAME = "slo_summary.json"

#: Objectives a breach record may name.
OBJECTIVES = ("latency", "staleness", "accuracy")


@dataclass
class SLOConfig:
    """Service-level objectives for a streaming run.

    - ``window``: sliding-window size (in stream windows) for the
      recent-past aggregates;
    - ``latency_target_s`` / ``staleness_target_s``: absolute targets;
      ``None`` auto-calibrates each as ``target_factor`` times the
      median of the first ``calibration_windows`` windows;
    - ``accuracy_floor``: the sliding-window accuracy must stay at or
      above this fraction;
    - ``calibration_windows``: windows consumed before gating starts
      (auto-calibrated targets are frozen at that point).
    """

    window: int = 32
    latency_target_s: Optional[float] = None
    staleness_target_s: Optional[float] = None
    accuracy_floor: float = 0.5
    calibration_windows: int = 8
    target_factor: float = 3.0

    def __post_init__(self) -> None:
        if self.window <= 0:
            raise ValueError("window must be positive")
        if self.calibration_windows < 1:
            raise ValueError("calibration_windows must cover at least one window")
        if not 0.0 <= self.accuracy_floor <= 1.0:
            raise ValueError("accuracy_floor must lie in [0, 1]")
        if self.target_factor <= 1.0:
            raise ValueError("target_factor must exceed 1")


class SloTracker:
    """Aggregates per-window stream telemetry against an :class:`SLOConfig`.

    Parameters follow the telemetry convention (:class:`HealthMonitor`,
    ``FaultTelemetry``): ``registry`` defaults to the global one (which
    only records while observability is enabled), ``run_dir`` defaults
    to the active observed run's directory, and breaches route to the
    installed health monitor (falling back to a private one bound to
    the same run directory, so ``alerts.jsonl`` is written either way).
    """

    def __init__(
        self,
        config: Optional[SLOConfig] = None,
        registry: Optional[MetricsRegistry] = None,
        run_dir: Optional[str] = None,
        monitor: Optional[obs_health.HealthMonitor] = None,
        prefix: str = "slo",
    ) -> None:
        self.config = config if config is not None else SLOConfig()
        self.prefix = prefix
        self.registry = registry if registry is not None else obs_metrics.get_registry()
        self._global_registry = registry is None
        if run_dir is None:
            run_dir = _STATE.run_dir
        self.run_dir = run_dir
        self._monitor = monitor
        self._own_monitor: Optional[obs_health.HealthMonitor] = None
        self._fp = None
        self.records: List[dict] = []
        self.breaches: Dict[str, int] = {}
        self._breach_active: Dict[str, bool] = {}
        self.windows_seen = 0
        self.frames_seen = 0
        # Lifetime distributions for the summary (exact count/sum,
        # bounded reservoir for quantiles — same trade-off as Histogram).
        self._latency = Histogram()
        self._staleness = Histogram()
        self._accuracy = Histogram()
        self._spikes_per_frame = Histogram()
        # Sliding accuracy over the recent past is the gated quantity —
        # kept locally so explicit-registry trackers gate identically to
        # global-registry ones.
        self._acc_window = obs_metrics.SlidingWindow(self.config.window)
        self._sliding_accuracy: Optional[float] = None
        # Calibration state: medians freeze into targets once the
        # calibration window count is reached.
        self._latency_target = self.config.latency_target_s
        self._staleness_target = self.config.staleness_target_s
        self._calibration_latencies: List[float] = []
        self._calibration_staleness: List[float] = []

    # ------------------------------------------------------------------
    def _record_metrics(self) -> bool:
        return not self._global_registry or is_enabled()

    def _write(self, record: dict) -> None:
        if len(self.records) < obs_health._MAX_RECORDS:
            self.records.append(record)
        if self._fp is None and self.run_dir is not None:
            os.makedirs(self.run_dir, exist_ok=True)
            self._fp = open(
                os.path.join(self.run_dir, SLO_FILENAME), "a", encoding="utf-8"
            )
        if self._fp is not None:
            self._fp.write(json.dumps(record, default=repr) + "\n")
            self._fp.flush()

    def _alert_monitor(self) -> Optional[obs_health.HealthMonitor]:
        if self._monitor is not None:
            return self._monitor
        active = obs_health.active()
        if active is not None:
            return active
        if self.run_dir is not None:
            if self._own_monitor is None:
                self._own_monitor = obs_health.HealthMonitor(run_dir=self.run_dir)
            return self._own_monitor
        return None

    # ------------------------------------------------------------------
    def targets(self) -> dict:
        """The currently effective objective targets (None = not yet
        calibrated / not gated)."""
        return {
            "latency_s": self._latency_target,
            "staleness_s": self._staleness_target,
            "accuracy_floor": self.config.accuracy_floor,
        }

    def _calibrate(self, latency_s: float, staleness_s: float) -> None:
        cfg = self.config
        if self._latency_target is None:
            self._calibration_latencies.append(latency_s)
            if len(self._calibration_latencies) >= cfg.calibration_windows:
                ordered = sorted(self._calibration_latencies)
                median = ordered[len(ordered) // 2]
                self._latency_target = cfg.target_factor * max(median, 1e-9)
        if self._staleness_target is None:
            self._calibration_staleness.append(staleness_s)
            if len(self._calibration_staleness) >= cfg.calibration_windows:
                ordered = sorted(self._calibration_staleness)
                median = ordered[len(ordered) // 2]
                self._staleness_target = cfg.target_factor * max(median, 1e-9)

    def _check(self, objective: str, value: float, target: Optional[float],
               breached: bool, index: int) -> Optional[dict]:
        """Once-per-stretch breach bookkeeping; returns the breach record."""
        if not breached:
            self._breach_active[objective] = False
            return None
        self.breaches[objective] = self.breaches.get(objective, 0) + 1
        if self._record_metrics():
            self.registry.inc(
                f"{self.prefix}.breaches", 1.0, objective=objective
            )
        record = {
            "kind": "breach",
            "schema": SLO_SCHEMA,
            "ts": time.time(),
            "window": index,
            "objective": objective,
            "value": float(value),
            "target": None if target is None else float(target),
        }
        self._write(record)
        if self._breach_active.get(objective):
            return record  # still inside the same breach stretch
        self._breach_active[objective] = True
        monitor = self._alert_monitor()
        if monitor is not None:
            monitor.alert(
                "slo_breach",
                f"{objective} SLO breached at window {index}: "
                f"{value:.4g} vs target {target:.4g}",
                severity="critical" if objective == "accuracy" else "warning",
                objective=objective,
                window=index,
                value=float(value),
                target=float(target),
            )
        return record

    # ------------------------------------------------------------------
    def observe_window(
        self,
        index: int,
        latency_s: float,
        staleness_s: float,
        accuracy: float,
        frames: int,
        spikes_per_frame: Optional[float] = None,
        burst: bool = False,
        corrupted: bool = False,
    ) -> dict:
        """Feed one processed stream window; returns its JSONL record.

        ``latency_s`` is the wall-clock cost of the window's forward
        pass(es); ``staleness_s`` the age of the result relative to the
        window's arrival; ``accuracy`` the window's top-1 fraction;
        ``frames`` the number of samples the window carried.
        """
        cfg = self.config
        self.windows_seen += 1
        self.frames_seen += int(frames)
        self._latency.observe(latency_s)
        self._staleness.observe(staleness_s)
        self._accuracy.observe(accuracy)
        if spikes_per_frame is not None:
            self._spikes_per_frame.observe(spikes_per_frame)
        throughput = float(frames) / latency_s if latency_s > 0 else 0.0

        if self._record_metrics():
            reg = self.registry
            reg.inc(f"{self.prefix}.windows")
            reg.inc(f"{self.prefix}.frames", float(frames))
            reg.observe_window(
                f"{self.prefix}.window_latency_s", latency_s, cfg.window
            )
            reg.observe_window(
                f"{self.prefix}.staleness_s", staleness_s, cfg.window
            )
            reg.observe_window(f"{self.prefix}.accuracy", accuracy, cfg.window)
            reg.observe_window(
                f"{self.prefix}.throughput_fps", throughput, cfg.window
            )
            if spikes_per_frame is not None:
                reg.set_gauge(
                    f"{self.prefix}.spikes_per_frame", spikes_per_frame
                )
        self._acc_window.observe(accuracy)
        self._sliding_accuracy = self._acc_window.mean

        calibrating = self.windows_seen <= cfg.calibration_windows
        self._calibrate(latency_s, staleness_s)
        breach_records = []
        if not calibrating:
            for objective, value, target in (
                ("latency", latency_s, self._latency_target),
                ("staleness", staleness_s, self._staleness_target),
            ):
                breached = target is not None and value > target
                record = self._check(objective, value, target, breached, index)
                if record is not None:
                    breach_records.append(record)
            sliding = self._sliding_accuracy
            breached = sliding is not None and sliding < cfg.accuracy_floor
            record = self._check(
                "accuracy", sliding if sliding is not None else 0.0,
                cfg.accuracy_floor, breached, index,
            )
            if record is not None:
                breach_records.append(record)

        record = {
            "kind": "window",
            "schema": SLO_SCHEMA,
            "schema_version": SLO_SCHEMA_VERSION,
            "ts": time.time(),
            "window": index,
            "frames": int(frames),
            "latency_s": float(latency_s),
            "staleness_s": float(staleness_s),
            "accuracy": float(accuracy),
            "sliding_accuracy": self._sliding_accuracy,
            "throughput_fps": throughput,
            "burst": bool(burst),
            "corrupted": bool(corrupted),
            "calibrating": calibrating,
            "breaches": [r["objective"] for r in breach_records],
        }
        if spikes_per_frame is not None:
            record["spikes_per_frame"] = float(spikes_per_frame)
        self._write(record)
        return record

    # ------------------------------------------------------------------
    def summary(self) -> dict:
        """JSON-ready lifetime summary (the canary gate's input)."""

        def stats(hist: Histogram) -> Optional[dict]:
            if not hist.count:
                return None
            return {
                "count": hist.count,
                "mean": hist.mean,
                "min": hist.minimum,
                "max": hist.maximum,
                "p50": hist.percentile(50.0),
                "p95": hist.percentile(95.0),
                "p99": hist.percentile(99.0),
            }

        return {
            "schema": SLO_SCHEMA,
            "schema_version": SLO_SCHEMA_VERSION,
            "windows": self.windows_seen,
            "frames": self.frames_seen,
            "targets": self.targets(),
            "latency_s": stats(self._latency),
            "staleness_s": stats(self._staleness),
            "accuracy": stats(self._accuracy),
            "spikes_per_frame": stats(self._spikes_per_frame),
            "sliding_accuracy": self._sliding_accuracy,
            "breaches": dict(self.breaches),
            "breaches_total": sum(self.breaches.values()),
        }

    def close(self) -> Optional[str]:
        """Write ``slo_summary.json`` (when a run dir exists) and close
        the JSONL sink.  Returns the summary path, or ``None``."""
        path = None
        if self.run_dir is not None and self.windows_seen:
            os.makedirs(self.run_dir, exist_ok=True)
            path = os.path.join(self.run_dir, SLO_SUMMARY_FILENAME)
            with open(path, "w", encoding="utf-8") as fp:
                json.dump(self.summary(), fp, indent=2, sort_keys=True)
        if self._fp is not None:
            self._fp.close()
            self._fp = None
        if self._own_monitor is not None:
            self._own_monitor.close()
            self._own_monitor = None
        return path

    def __enter__(self) -> "SloTracker":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
