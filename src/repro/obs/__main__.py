"""Command-line entry point for the observability toolkit.

::

    python -m repro.obs runs list
    python -m repro.obs runs show RUN_ID
    python -m repro.obs runs gc --keep 20 [--delete-dirs]
    python -m repro.obs runs tag-baseline RUN_ID
    python -m repro.obs diff RUN_A RUN_B [--rtol ... --atol ... --json]
    python -m repro.obs diff RUN --baseline
    python -m repro.obs dashboard RUN_DIR [--once]
    python -m repro.obs profile RUN_DIR [--top 10] [--json]
    python -m repro.obs profile RUN_DIR --chrome-trace out.json

``diff``, ``dashboard`` and ``profile`` delegate to
:mod:`repro.obs.diff`, :mod:`repro.obs.dashboard` and
:mod:`repro.obs.profile`; ``runs`` operates on the registry at
``$REPRO_RUNS_ROOT`` (default ``runs/``).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from . import dashboard as dashboard_cli
from . import diff as diff_cli
from . import profile as profile_cli
from .registry import RunRegistry, render_runs_table, runs_root


def _runs_main(argv: List[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs runs",
        description="Inspect and maintain the observed-run registry.",
    )
    parser.add_argument("--root", default=None,
                        help=f"registry root (default: {runs_root()})")
    sub = parser.add_subparsers(dest="command", required=True)

    list_p = sub.add_parser("list", help="list registered runs")
    list_p.add_argument("--json", action="store_true",
                        help="emit folded entries as JSON")

    show_p = sub.add_parser("show", help="show one run (id or unique prefix)")
    show_p.add_argument("run_id")

    gc_p = sub.add_parser("gc", help="compact the index and prune stale runs")
    gc_p.add_argument("--keep", type=int, default=None,
                      help="retain only the newest N runs")
    gc_p.add_argument("--keep-missing", action="store_true",
                      help="keep entries whose run directory is gone")
    gc_p.add_argument("--delete-dirs", action="store_true",
                      help="also delete pruned runs' artefact directories")

    tag_p = sub.add_parser("tag-baseline",
                           help="mark a run as the diff baseline")
    tag_p.add_argument("run_id")

    args = parser.parse_args(argv)
    registry = RunRegistry(root=args.root)

    if args.command == "list":
        runs = registry.runs()
        if args.json:
            print(json.dumps(runs, indent=2, sort_keys=True, default=repr))
        elif runs:
            print(render_runs_table(runs, registry.baseline_id()))
        else:
            print(f"no runs registered under {registry.root}/")
        return 0

    if args.command == "show":
        run = registry.get(args.run_id)
        if run is None:
            print(f"error: run '{args.run_id}' not found in {registry.index_path}",
                  file=sys.stderr)
            return 2
        print(json.dumps(run, indent=2, sort_keys=True, default=repr))
        return 0

    if args.command == "gc":
        summary = registry.gc(
            keep=args.keep,
            drop_missing=not args.keep_missing,
            delete_dirs=args.delete_dirs,
        )
        print(
            f"gc: kept {summary['kept']} run(s), dropped {summary['dropped']}"
            + (f", deleted {summary['dirs_deleted']} dir(s)"
               if args.delete_dirs else "")
        )
        if summary.get("baseline_cleared"):
            print(
                "warning: the tagged baseline's run directory was missing — "
                "cleared the dangling baseline tag (re-tag with "
                "`python -m repro.obs runs tag-baseline RUN_ID`)",
                file=sys.stderr,
            )
        return 0

    if args.command == "tag-baseline":
        try:
            registry.set_baseline(args.run_id)
        except KeyError as exc:
            print(f"error: {exc.args[0]}", file=sys.stderr)
            return 2
        print(f"baseline: {registry.baseline_id()}")
        return 0

    return 2  # unreachable with required=True


def main(argv: Optional[List[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description=("Observability toolkit: run registry, diffs, "
                     "dashboard, op profiles."),
    )
    parser.add_argument("tool",
                        choices=("runs", "diff", "dashboard", "profile"),
                        help="sub-tool to run")
    parser.add_argument("rest", nargs=argparse.REMAINDER)
    args = parser.parse_args(argv)

    if args.tool == "runs":
        return _runs_main(args.rest)
    if args.tool == "diff":
        return diff_cli.main(args.rest)
    if args.tool == "profile":
        return profile_cli.main(args.rest)
    return dashboard_cli.main(args.rest)


if __name__ == "__main__":
    raise SystemExit(main())
