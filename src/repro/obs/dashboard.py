"""Live terminal dashboard over an observed run directory.

    python -m repro.obs dashboard results/run_2/            # live, refreshing
    python -m repro.obs dashboard results/run_2/ --once     # one deterministic frame

The dashboard *tails* the run's JSONL artefacts — ``events.jsonl``,
``trace.jsonl``, ``alerts.jsonl``, ``drift.jsonl``, ``faults.jsonl``,
``profile.jsonl``, ``slo.jsonl`` —
through :class:`JsonlTailer`, which only ever consumes complete lines:
a line still being written by the observed process (no trailing
newline yet) is left for the next poll, and malformed lines are skipped
and counted, never fatal.  ``metrics.json`` is re-read whole on each
refresh when present.

One frame shows:

- the run header (id, status, artefact record counts);
- loss and accuracy sparklines from the trainers' epoch log records
  and health heartbeats;
- for streaming runs: a window-latency sparkline, the SLO status row
  (per-objective ok/BREACH, sliding accuracy) and the breach log;
- per-layer spike-rate bars (latest health heartbeat, falling back to
  the ``health.spike_rate`` / ``snn.layer_spike_rate`` gauges);
- the most recent health alerts;
- the hottest primitive ops from the op profiler (when the run was
  profiled);
- a span waterfall of the slowest completed spans.

``--once`` renders exactly one frame with no clock reads and no ANSI
cursor control, so its output is a deterministic function of the run
directory's contents — the snapshot mode the tests pin.
"""

from __future__ import annotations

import argparse
import json
import os
import time
from typing import Dict, List, Optional

SPARK_CHARS = "▁▂▃▄▅▆▇█"
BAR_CHAR = "█"

_ANSI_CLEAR = "\x1b[2J\x1b[H"


class JsonlTailer:
    """Incremental reader of one JSONL file.

    Tracks a byte offset and returns only records from *complete* lines
    (terminated by ``\\n``); a truncated tail written mid-crash or
    mid-flush is retried on the next poll instead of crashing the
    dashboard.  A file that shrinks (rotated/rewritten) resets the
    offset.  Malformed complete lines are skipped and counted in
    ``skipped``.
    """

    def __init__(self, path: str) -> None:
        self.path = path
        self.offset = 0
        self.skipped = 0
        self.records: List[dict] = []

    def poll(self) -> List[dict]:
        """Read newly completed records; returns just the new ones."""
        try:
            size = os.path.getsize(self.path)
        except OSError:
            return []
        if size < self.offset:
            self.offset = 0  # truncated/rewritten: start over
            self.records = []
        if size == self.offset:
            return []
        new_records: List[dict] = []
        with open(self.path, "r", encoding="utf-8", errors="replace") as fp:
            fp.seek(self.offset)
            chunk = fp.read()
        consumed = len(chunk.encode("utf-8"))
        if not chunk.endswith("\n"):
            # Leave the partial trailing line (and its bytes) for later.
            head, _, tail = chunk.rpartition("\n")
            if not _:
                return []  # nothing complete yet
            consumed -= len(tail.encode("utf-8"))
            chunk = head + "\n"
        self.offset += consumed
        for line in chunk.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                self.skipped += 1
                continue
            if isinstance(record, dict):
                new_records.append(record)
            else:
                self.skipped += 1
        self.records.extend(new_records)
        return new_records


class DashboardState:
    """All tailers plus the derived series one frame renders from."""

    def __init__(self, run_dir: str) -> None:
        self.run_dir = run_dir
        self.events = JsonlTailer(os.path.join(run_dir, "events.jsonl"))
        self.spans = JsonlTailer(os.path.join(run_dir, "trace.jsonl"))
        self.health = JsonlTailer(os.path.join(run_dir, "alerts.jsonl"))
        self.drift = JsonlTailer(os.path.join(run_dir, "drift.jsonl"))
        self.faults = JsonlTailer(os.path.join(run_dir, "faults.jsonl"))
        self.profile = JsonlTailer(os.path.join(run_dir, "profile.jsonl"))
        self.slo = JsonlTailer(os.path.join(run_dir, "slo.jsonl"))
        self.metrics: dict = {}

    def refresh(self) -> None:
        for tailer in (self.events, self.spans, self.health,
                       self.drift, self.faults, self.profile, self.slo):
            tailer.poll()
        path = os.path.join(self.run_dir, "metrics.json")
        try:
            with open(path, "r", encoding="utf-8") as fp:
                self.metrics = json.load(fp)
        except (OSError, json.JSONDecodeError):
            pass  # keep the previous snapshot (or {})

    # -- derived series ------------------------------------------------
    def run_id(self) -> str:
        for event in self.events.records:
            if event.get("kind") == "run_start":
                return str(event.get("run_id", "?"))
        return "?"

    def status(self) -> str:
        if any(e.get("kind") == "run_end" for e in self.events.records):
            return "completed"
        return "running" if self.events.records else "empty"

    def epoch_series(self, key: str) -> List[float]:
        """Per-epoch series pulled from trainer log records and health
        heartbeats (epoch-ordered as recorded)."""
        values: List[float] = []
        for event in self.events.records:
            if event.get("kind") != "log":
                continue
            fields = event.get("fields") or {}
            value = fields.get(key)
            if isinstance(value, (int, float)) and value == value:  # not NaN
                values.append(float(value))
        if values:
            return values
        heartbeat_key = {"train_loss": "loss", "test_accuracy": "accuracy"}.get(
            key, key
        )
        for record in self.health.records:
            if record.get("kind") != "health":
                continue
            value = record.get(heartbeat_key)
            if isinstance(value, (int, float)) and value == value:
                values.append(float(value))
        return values

    def layer_rates(self) -> Optional[List[float]]:
        for record in reversed(self.health.records):
            if record.get("kind") == "health" and record.get("layer_rates"):
                return [float(r) for r in record["layer_rates"]]
        gauges = (self.metrics or {}).get("gauges") or {}
        rates: Dict[int, float] = {}
        for prefix in ("health.spike_rate{layer=", "snn.layer_spike_rate{layer="):
            for name, payload in gauges.items():
                if name.startswith(prefix) and name.endswith("}"):
                    try:
                        layer = int(name[len(prefix):-1])
                    except ValueError:
                        continue
                    value = (payload or {}).get("value")
                    if isinstance(value, (int, float)):
                        rates[layer] = float(value)
            if rates:
                return [rates[k] for k in sorted(rates)]
        return None

    def dispatch_rows(self) -> List[dict]:
        """Per-layer sparse-dispatch gauges (``dispatch.*{layer=N}``)."""
        gauges = (self.metrics or {}).get("gauges") or {}
        rows: Dict[int, dict] = {}
        for name, payload in gauges.items():
            if not name.startswith("dispatch.") or "{layer=" not in name:
                continue
            field, label = name.split("{layer=", 1)
            try:
                layer = int(label.rstrip("}"))
            except ValueError:
                continue
            value = (payload or {}).get("value")
            if isinstance(value, (int, float)):
                rows.setdefault(layer, {})[field[len("dispatch."):]] = float(value)
        return [dict(row, layer=layer) for layer, row in sorted(rows.items())]

    def worker_rows(self) -> List[dict]:
        """Per-worker task/failure lanes (``exec.worker_*{worker=N}``)."""
        counters = (self.metrics or {}).get("counters") or {}
        rows: Dict[int, dict] = {}
        for field in ("worker_tasks", "worker_failures"):
            prefix = f"exec.{field}{{worker="
            for name, value in counters.items():
                if not name.startswith(prefix) or not name.endswith("}"):
                    continue
                try:
                    worker = int(name[len(prefix):-1])
                except ValueError:
                    continue
                if isinstance(value, (int, float)):
                    rows.setdefault(worker, {})[field] = float(value)
        return [dict(row, worker=worker) for worker, row in sorted(rows.items())]

    def alerts(self) -> List[dict]:
        return [r for r in self.health.records if r.get("kind") == "alert"]

    def slo_windows(self) -> List[dict]:
        return [r for r in self.slo.records if r.get("kind") == "window"]

    def slo_breaches(self) -> List[dict]:
        return [r for r in self.slo.records if r.get("kind") == "breach"]

    def slo_series(self, key: str) -> List[float]:
        values: List[float] = []
        for record in self.slo_windows():
            value = record.get(key)
            if isinstance(value, (int, float)) and value == value:  # not NaN
                values.append(float(value))
        return values

    def hot_ops(self, top: int = 5) -> List[tuple]:
        """``(op, total_s, count)`` of the costliest op kinds so far."""
        totals: Dict[str, float] = {}
        counts: Dict[str, int] = {}
        for record in self.profile.records:
            if record.get("kind") != "op":
                continue
            dt = record.get("dt_s")
            if not isinstance(dt, (int, float)):
                continue
            op = str(record.get("op", "?"))
            totals[op] = totals.get(op, 0.0) + float(dt)
            counts[op] = counts.get(op, 0) + 1
        ranked = sorted(totals.items(), key=lambda kv: (-kv[1], kv[0]))
        return [(op, total, counts[op]) for op, total in ranked[:top]]


# ----------------------------------------------------------------------
# Rendering primitives
# ----------------------------------------------------------------------
def sparkline(values: List[float], width: int = 40) -> str:
    """Resample ``values`` to ``width`` columns of block characters."""
    if not values:
        return "·" * width
    if len(values) > width:
        # Keep the most recent `width` points — a dashboard watches now.
        values = values[-width:]
    lo, hi = min(values), max(values)
    span = hi - lo
    chars = []
    for value in values:
        if span <= 0:
            chars.append(SPARK_CHARS[0])
        else:
            index = int((value - lo) / span * (len(SPARK_CHARS) - 1))
            chars.append(SPARK_CHARS[index])
    return "".join(chars).ljust(width, " ")


def hbar(fraction: float, width: int = 24) -> str:
    """Horizontal bar of ``fraction`` (clipped to [0, 1]) of ``width``."""
    fraction = min(max(fraction, 0.0), 1.0)
    filled = int(round(fraction * width))
    return BAR_CHAR * filled + "·" * (width - filled)


def _format_duration(seconds: Optional[float]) -> str:
    if seconds is None:
        return "-"
    if seconds < 1e-3:
        return f"{seconds * 1e6:.0f}us"
    if seconds < 1.0:
        return f"{seconds * 1e3:.1f}ms"
    return f"{seconds:.2f}s"


def render_frame(state: DashboardState, width: int = 80) -> str:
    """One dashboard frame as plain text (no cursor control codes).

    Deterministic for a fixed run directory: everything rendered comes
    from the artefact files, never from the wall clock.
    """
    rule = "─" * width
    lines = [
        f"┌{rule}┐".replace("┌─", "┌─"),
    ]
    lines = []
    header = (
        f" run {state.run_id()}  [{state.status()}]  {state.run_dir}"
    )
    lines.append(header[: width + 2])
    lines.append(rule)

    counts = (
        f" events {len(state.events.records)}  spans {len(state.spans.records)}"
        f"  alerts {len(state.alerts())}  drift {len(state.drift.records)}"
        f"  faults {len(state.faults.records)}"
    )
    skipped = sum(t.skipped for t in (state.events, state.spans, state.health,
                                      state.drift, state.faults,
                                      state.profile, state.slo))
    if skipped:
        counts += f"  (skipped {skipped} malformed line(s))"
    lines.append(counts)
    lines.append(rule)

    spark_width = max(16, width - 36)
    for label, key, fmt in (
        ("loss", "train_loss", "{:.4f}"),
        ("accuracy", "test_accuracy", "{:.3f}"),
    ):
        series = state.epoch_series(key)
        last = fmt.format(series[-1]) if series else "-"
        lines.append(
            f" {label:<9}[{sparkline(series, spark_width)}] "
            f"last {last} ({len(series)} pts)"
        )
    lines.append(rule)

    windows = state.slo_windows()
    if windows:
        latencies = state.slo_series("latency_s")
        last_latency = latencies[-1] if latencies else None
        lines.append(
            f" window latency [{sparkline(latencies, spark_width)}] "
            f"last {_format_duration(last_latency)} ({len(latencies)} pts)"
        )
        last = windows[-1]
        breaches = state.slo_breaches()
        breached_objectives = {str(r.get("objective", "?")) for r in breaches}
        status_cells = []
        for objective in ("latency", "staleness", "accuracy"):
            mark = "BREACH" if objective in breached_objectives else "ok"
            status_cells.append(f"{objective}:{mark}")
        sliding = last.get("sliding_accuracy")
        sliding_text = (
            f"{sliding:.3f}" if isinstance(sliding, (int, float)) else "-"
        )
        lines.append(
            f" SLO  {'  '.join(status_cells)}  "
            f"windows {len(windows)}  breaches {len(breaches)}  "
            f"sliding acc {sliding_text}"
            + ("  [calibrating]" if last.get("calibrating") else "")
        )
        if breaches:
            lines.append(f" breach log (last {min(len(breaches), 5)})")
            for record in breaches[-5:]:
                value = record.get("value")
                target = record.get("target")
                value_text = (
                    f"{value:.4g}" if isinstance(value, (int, float)) else "-"
                )
                target_text = (
                    f"{target:.4g}" if isinstance(target, (int, float)) else "-"
                )
                lines.append(
                    f"   w{record.get('window', '?')} "
                    f"{record.get('objective', '?')}: {value_text} "
                    f"vs {target_text}"
                )
        lines.append(rule)

    rates = state.layer_rates()
    lines.append(" spike rate per layer")
    if rates:
        peak = max(max(rates), 1e-12)
        for layer, rate in enumerate(rates):
            lines.append(
                f"   L{layer:<3}{hbar(rate / peak, max(10, width - 30))} "
                f"{rate:.4f}"
            )
    else:
        lines.append("   (no spike-rate telemetry yet)")
    lines.append(rule)

    dispatch = state.dispatch_rows()
    if dispatch:
        lines.append(" sparse dispatch (density vs crossover)")
        for row in dispatch:
            density = row.get("density", 0.0)
            threshold = row.get("threshold", 0.0)
            frac = row.get("sparse_fraction", 0.0)
            path = (
                "sparse" if frac >= 1.0 else "dense " if frac <= 0.0 else "mixed "
            )
            lines.append(
                f"   L{row['layer']:<3}{path} "
                f"{hbar(density, max(10, width - 44))} "
                f"d={density:.4f} x={threshold:.4f}"
            )
        lines.append(rule)

    workers = state.worker_rows()
    if workers:
        lines.append(" worker lanes (tasks / failures)")
        peak = max(max(r.get("worker_tasks", 0.0) for r in workers), 1e-12)
        for row in workers:
            tasks = row.get("worker_tasks", 0.0)
            failures = row.get("worker_failures", 0.0)
            marker = "!" if failures else " "
            lines.append(
                f"  {marker}W{row['worker']:<3}"
                f"{hbar(tasks / peak, max(10, width - 36))} "
                f"{tasks:g} tasks, {failures:g} failed"
            )
        lines.append(rule)

    alerts = state.alerts()
    lines.append(f" alerts ({len(alerts)})")
    for alert in alerts[-5:]:
        severity = alert.get("severity", "warning")
        message = str(alert.get("message", ""))
        line = f"   [{severity[:4]}] {alert.get('rule', '?')}: {message}"
        lines.append(line[: width + 2])
    if not alerts:
        lines.append("   (none)")
    lines.append(rule)

    hot = state.hot_ops(top=5)
    lines.append(" hot ops (top 5 by total time)")
    if hot:
        peak = max(total for _, total, _ in hot)
        peak = max(peak, 1e-12)
        for op, total, count in hot:
            lines.append(
                f"   {op[:16]:<16} {hbar(total / peak, max(10, width - 46))} "
                f"{_format_duration(total)} ×{count}"
            )
    else:
        lines.append("   (no op profile recorded)")
    lines.append(rule)

    spans = [
        s for s in state.spans.records
        if isinstance(s.get("duration_s"), (int, float))
        and isinstance(s.get("started_at"), (int, float))
    ]
    lines.append(" span waterfall (slowest 10)")
    if spans:
        slowest = sorted(spans, key=lambda s: -s["duration_s"])[:10]
        slowest.sort(key=lambda s: s["started_at"])
        t0 = min(s["started_at"] for s in slowest)
        t1 = max(s["started_at"] + s["duration_s"] for s in slowest)
        total = max(t1 - t0, 1e-9)
        lane = max(10, width - 44)
        for span in slowest:
            begin = int((span["started_at"] - t0) / total * lane)
            length = max(1, int(span["duration_s"] / total * lane))
            begin = min(begin, lane - 1)
            length = min(length, lane - begin)
            track = "·" * begin + BAR_CHAR * length
            track = track.ljust(lane, "·")
            name = str(span.get("name", "?"))[:22]
            marker = "!" if span.get("status") == "error" else " "
            lines.append(
                f"  {marker}{name:<22} {track} "
                f"{_format_duration(span['duration_s'])}"
            )
    else:
        lines.append("   (no completed spans yet)")
    return "\n".join(lines) + "\n"


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def main(argv=None) -> int:
    """CLI body shared with ``python -m repro.obs dashboard``."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs dashboard",
        description="Terminal dashboard over an observed run directory.",
    )
    parser.add_argument("run_dir", help="directory written by repro.obs.configure")
    parser.add_argument("--once", action="store_true",
                        help="render a single deterministic frame and exit")
    parser.add_argument("--interval", type=float, default=1.0,
                        help="refresh period in seconds (live mode)")
    parser.add_argument("--frames", type=int, default=None,
                        help="stop after N frames (live mode; default: "
                             "until the run ends or Ctrl-C)")
    parser.add_argument("--width", type=int, default=80)
    args = parser.parse_args(argv)

    if not os.path.isdir(args.run_dir):
        parser.error(f"run directory not found: {args.run_dir}")
    if args.interval <= 0:
        parser.error("--interval must be positive")

    state = DashboardState(args.run_dir)
    if args.once:
        state.refresh()
        print(render_frame(state, width=args.width), end="")
        return 0

    frames = 0
    try:
        while True:
            state.refresh()
            frame = render_frame(state, width=args.width)
            print(_ANSI_CLEAR + frame, end="", flush=True)
            frames += 1
            if args.frames is not None and frames >= args.frames:
                break
            if state.status() == "completed":
                break
            time.sleep(args.interval)
    except KeyboardInterrupt:
        pass
    print()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
