"""Instrumented end-to-end smoke run (``make smoke``).

Trains a micro DNN, converts it, evaluates the SNN — all under an
observed run — then asserts that the run directory contains a non-empty
span timeline covering calibration → Algorithm 1 → conversion → SNN
evaluation, and prints the rendered report.

The analytics layer is exercised on top of the same pipeline:

- **registry round-trip** — the observed run must appear in the run
  registry with a terminal ``completed`` status and a non-empty
  artefact inventory;
- **deterministic self-diff** — the identical pipeline is run a second
  time (same seed, fresh caches) and ``repro.obs.diff`` of the two run
  directories must report *zero* regressions: the substrate is
  deterministic, so only wall-clock series (never gated) may differ;
- **dashboard snapshot** — ``dashboard --once`` must render the same
  frame twice for a finished run directory.

With ``--profile`` (``make profile-smoke``) both pipeline runs are
additionally op-profiled: each run directory must carry a
``profile.jsonl`` plus a ``repro.obs.profile/v1`` summary with
per-layer attribution, the two summaries must agree on their aggregate
keys (deterministic substrate ⇒ deterministic op/layer sets), the
registry inventory must list both profile artefacts, the Chrome-trace
export must be loadable JSON, and the self-diff must stay clean with
the profile series aligned.
"""

from __future__ import annotations

import argparse
import contextlib
import io
import os
from dataclasses import replace

REQUIRED_SPANS = {"run_pipeline", "calibration", "algorithm1", "conversion", "snn_eval"}

_ARTEFACTS = (
    "trace.jsonl", "events.jsonl", "metrics.json",
    "drift.jsonl", "faults.jsonl", "alerts.jsonl",
    "profile.jsonl", "profile_summary.json",
)


def _clean_run_dir(run_dir: str) -> None:
    # Run directories append across runs; a smoke check wants a fresh
    # timeline so the assertions below see exactly one pipeline.
    for artefact in _ARTEFACTS:
        path = os.path.join(run_dir, artefact)
        if os.path.exists(path):
            os.remove(path)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.smoke",
        description="Tiny instrumented convert+evaluate pipeline.",
    )
    parser.add_argument("--run-dir", default=os.path.join("results", "smoke_run"))
    parser.add_argument("--report", action="store_true",
                        help="print the rendered markdown report")
    parser.add_argument("--profile", action="store_true",
                        help="op-profile both runs and assert the "
                             "profile artefacts/aggregates")
    args = parser.parse_args(argv)

    from ..experiments.config import SCALES, ExperimentConfig
    from ..experiments.context import clear_context_cache
    from ..experiments.pipeline import clear_pipeline_cache, run_pipeline
    from . import load_run, observe, render_report, state
    from .dashboard import main as dashboard_main
    from .diff import diff_run_dirs
    from .registry import RunRegistry, registration_enabled

    scale = replace(
        SCALES["tiny"],
        name="smoke",
        image_size=8,
        train_size=60,
        test_size=30,
        width_multiplier=0.125,
        batch_size=30,
        dnn_epochs=2,
        snn_epochs=1,
        calibration_batches=1,
    )
    config = ExperimentConfig(
        arch="vgg11", dataset="cifar10", timesteps=2, scale=scale
    )

    run_dir_a = args.run_dir
    run_dir_b = f"{args.run_dir}_b"
    run_ids = []
    for run_dir in (run_dir_a, run_dir_b):
        clear_context_cache()
        clear_pipeline_cache()
        _clean_run_dir(run_dir)
        with observe(run_dir, smoke=True, arch=config.arch,
                     timesteps=config.timesteps, seed=config.seed,
                     profile=args.profile):
            run_ids.append(state().run_id)
            result = run_pipeline(config, fine_tune=False)

    trace_path = os.path.join(run_dir_a, "trace.jsonl")
    if not os.path.exists(trace_path) or os.path.getsize(trace_path) == 0:
        print(f"SMOKE FAILED: empty or missing trace file {trace_path}")
        return 1
    run = load_run(run_dir_a)
    names = {span.get("name") for span in run.spans}
    missing = REQUIRED_SPANS - names
    if missing:
        print(f"SMOKE FAILED: trace is missing spans {sorted(missing)}")
        return 1
    spike_histograms = [
        name
        for name in run.metrics.get("histograms", {})
        if name.startswith("snn.spike_rate")
    ]
    if not spike_histograms:
        print("SMOKE FAILED: no per-layer spike-rate histograms recorded")
        return 1
    if not run.drift:
        print("SMOKE FAILED: no conversion-drift records in drift.jsonl")
        return 1
    energy_gauges = [
        name
        for name in run.metrics.get("gauges", {})
        if name.startswith("energy.")
    ]
    if not energy_gauges:
        print("SMOKE FAILED: no energy.* gauges recorded")
        return 1

    # Registry round-trip: both observed runs are findable and terminal.
    if registration_enabled():
        registry = RunRegistry()
        for run_id in run_ids:
            entry = registry.get(run_id)
            if entry is None:
                print(f"SMOKE FAILED: run {run_id} missing from the registry "
                      f"({registry.index_path})")
                return 1
            if entry.get("status") != "completed":
                print(f"SMOKE FAILED: run {run_id} status is "
                      f"{entry.get('status')!r}, expected 'completed'")
                return 1
            if not entry.get("artifacts"):
                print(f"SMOKE FAILED: run {run_id} registered with an empty "
                      "artefact inventory")
                return 1

    # Op-profile artefacts: schema, deterministic aggregates, export.
    profile_note = ""
    if args.profile:
        import json as _json

        from . import profile as profile_mod

        summaries = []
        for run_dir in (run_dir_a, run_dir_b):
            jsonl_path = os.path.join(run_dir, profile_mod.PROFILE_FILENAME)
            if not os.path.exists(jsonl_path) or os.path.getsize(jsonl_path) == 0:
                print(f"SMOKE FAILED: empty or missing profile {jsonl_path}")
                return 1
            summary = profile_mod.load_summary(run_dir)
            if not summary:
                print(f"SMOKE FAILED: missing profile summary in {run_dir}")
                return 1
            if summary.get("schema") != profile_mod.PROFILE_SCHEMA:
                print(f"SMOKE FAILED: profile summary schema is "
                      f"{summary.get('schema')!r}, expected "
                      f"{profile_mod.PROFILE_SCHEMA!r}")
                return 1
            layers = [name for name in summary.get("by_layer", {})
                      if name != profile_mod.UNATTRIBUTED]
            if not layers:
                print(f"SMOKE FAILED: profile summary in {run_dir} has no "
                      "attributed layers")
                return 1
            summaries.append(summary)
        for table in ("by_op", "by_layer"):
            keys_a = sorted(summaries[0].get(table, {}))
            keys_b = sorted(summaries[1].get(table, {}))
            if keys_a != keys_b:
                print(f"SMOKE FAILED: profile {table} keys differ between "
                      f"identical-seed runs: {keys_a} vs {keys_b}")
                return 1
        if registration_enabled():
            entry = RunRegistry().get(run_ids[0])
            artifacts = (entry or {}).get("artifacts") or {}
            for name in (profile_mod.PROFILE_FILENAME,
                         profile_mod.SUMMARY_FILENAME):
                if name not in artifacts:
                    print(f"SMOKE FAILED: registry inventory is missing "
                          f"profile artefact {name!r}")
                    return 1
        chrome_path = os.path.join(run_dir_a, "chrome_trace.json")
        code = profile_mod.main([run_dir_a, "--chrome-trace", chrome_path])
        if code != 0:
            print(f"SMOKE FAILED: profile --chrome-trace exited {code}")
            return 1
        with open(chrome_path, "r", encoding="utf-8") as fp:
            trace_doc = _json.load(fp)
        if not trace_doc.get("traceEvents"):
            print("SMOKE FAILED: exported Chrome trace has no traceEvents")
            return 1
        profile_note = (
            f"{summaries[0].get('ops', 0)} profiled ops over "
            f"{len(summaries[0].get('by_layer', {}))} layers, "
        )

    # Deterministic self-diff: same seed twice => zero regressions.
    diff = diff_run_dirs(run_dir_a, run_dir_b)
    if not diff.ok:
        print(diff.render())
        print(f"SMOKE FAILED: identical-seed self-diff found "
              f"{len(diff.regressions)} regression(s)")
        return 1

    # Dashboard snapshot mode must be a pure function of the run dir.
    frames = []
    for _ in range(2):
        buffer = io.StringIO()
        with contextlib.redirect_stdout(buffer):
            code = dashboard_main([run_dir_a, "--once"])
        if code != 0:
            print(f"SMOKE FAILED: dashboard --once exited {code}")
            return 1
        frames.append(buffer.getvalue())
    if frames[0] != frames[1]:
        print("SMOKE FAILED: dashboard --once rendered differing frames "
              "for the same run directory")
        return 1

    if args.report:
        print(render_report(run))
    print(
        f"smoke ok: {len(run.spans)} spans, "
        f"{len(spike_histograms)} spike-rate histograms, "
        f"{len(run.drift)} drift records, "
        f"{len(energy_gauges)} energy gauges, "
        f"{profile_note}"
        f"self-diff clean over {len(diff.deltas)} aligned series, "
        f"dnn={result.dnn_accuracy:.3f} "
        f"conversion={result.conversion_accuracy:.3f} "
        f"(trace: {trace_path})"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
