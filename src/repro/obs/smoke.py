"""Instrumented end-to-end smoke run (``make smoke``).

Trains a micro DNN, converts it, evaluates the SNN — all under an
observed run — then asserts that the run directory contains a non-empty
span timeline covering calibration → Algorithm 1 → conversion → SNN
evaluation, and prints the rendered report.
"""

from __future__ import annotations

import argparse
import os
from dataclasses import replace

REQUIRED_SPANS = {"run_pipeline", "calibration", "algorithm1", "conversion", "snn_eval"}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.smoke",
        description="Tiny instrumented convert+evaluate pipeline.",
    )
    parser.add_argument("--run-dir", default=os.path.join("results", "smoke_run"))
    parser.add_argument("--report", action="store_true",
                        help="print the rendered markdown report")
    args = parser.parse_args(argv)

    from ..experiments.config import SCALES, ExperimentConfig
    from ..experiments.context import clear_context_cache
    from ..experiments.pipeline import clear_pipeline_cache, run_pipeline
    from . import load_run, observe, render_report

    scale = replace(
        SCALES["tiny"],
        name="smoke",
        image_size=8,
        train_size=60,
        test_size=30,
        width_multiplier=0.125,
        batch_size=30,
        dnn_epochs=2,
        snn_epochs=1,
        calibration_batches=1,
    )
    config = ExperimentConfig(
        arch="vgg11", dataset="cifar10", timesteps=2, scale=scale
    )
    clear_context_cache()
    clear_pipeline_cache()

    # Run directories append across runs; a smoke check wants a fresh
    # timeline so the assertions below see exactly one pipeline.
    for artefact in ("trace.jsonl", "events.jsonl", "metrics.json", "drift.jsonl"):
        path = os.path.join(args.run_dir, artefact)
        if os.path.exists(path):
            os.remove(path)

    with observe(args.run_dir, smoke=True):
        result = run_pipeline(config, fine_tune=False)

    trace_path = os.path.join(args.run_dir, "trace.jsonl")
    if not os.path.exists(trace_path) or os.path.getsize(trace_path) == 0:
        print(f"SMOKE FAILED: empty or missing trace file {trace_path}")
        return 1
    run = load_run(args.run_dir)
    names = {span.get("name") for span in run.spans}
    missing = REQUIRED_SPANS - names
    if missing:
        print(f"SMOKE FAILED: trace is missing spans {sorted(missing)}")
        return 1
    spike_histograms = [
        name
        for name in run.metrics.get("histograms", {})
        if name.startswith("snn.spike_rate")
    ]
    if not spike_histograms:
        print("SMOKE FAILED: no per-layer spike-rate histograms recorded")
        return 1
    if not run.drift:
        print("SMOKE FAILED: no conversion-drift records in drift.jsonl")
        return 1

    if args.report:
        print(render_report(run))
    print(
        f"smoke ok: {len(run.spans)} spans, "
        f"{len(spike_histograms)} spike-rate histograms, "
        f"{len(run.drift)} drift records, "
        f"dnn={result.dnn_accuracy:.3f} "
        f"conversion={result.conversion_accuracy:.3f} "
        f"(trace: {trace_path})"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
