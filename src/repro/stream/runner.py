"""Streaming runner: drive a SpikingNetwork window-by-window.

The runner is the serving loop the paper's ultra-low-latency argument
implies: windows arrive on a simulated clock, each is pushed through
the fused engine with membranes kept **warm** across windows
(:meth:`SpikingNetwork.streaming` — the network behaves as one endless
unroll chunked into windows), and every window yields the three
operational measurements the SLO layer gates on:

- **latency** — wall-clock of the window's forward pass(es);
- **staleness** — age of the result relative to the window's arrival
  on the simulated clock (service is serial, so queueing delay from a
  slow window propagates to its successors — exactly how a burst turns
  into a staleness violation);
- **accuracy** — the window's top-1 fraction, fed into the sliding
  accuracy objective.

Corrupted windows realise their :class:`~repro.faults.FaultSpec`
around the forward pass via :func:`repro.faults.inject_faults`
(transmission faults degrade the affected neurons to stepwise for that
window; the network is restored bit-for-bit after, membranes carry
through untouched).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..faults import FaultTelemetry
from ..obs.slo import SLOConfig, SloTracker
from ..tensor import no_grad
from .generator import SyntheticStream

__all__ = ["StreamResult", "run_stream"]


@dataclass
class StreamResult:
    """Outcome of one streaming run."""

    windows: int
    frames: int
    accuracy: float
    breaches: dict
    summary: dict
    records: List[dict]

    @property
    def breaches_total(self) -> int:
        return sum(self.breaches.values())


def run_stream(
    snn,
    stream: SyntheticStream,
    normalize=None,
    slo_config: Optional[SLOConfig] = None,
    tracker: Optional[SloTracker] = None,
    telemetry: Optional[FaultTelemetry] = None,
    verbose: bool = False,
) -> StreamResult:
    """Run ``stream`` through ``snn``; returns the aggregated result.

    ``normalize`` is the model's training-time transform (stream frames
    are raw ``[0, 1]``); ``tracker`` defaults to a fresh
    :class:`SloTracker` bound to the active observed run, which is
    closed (``slo_summary.json`` written) before returning — pass an
    explicit tracker to keep it open across several streams.
    """
    own_tracker = tracker is None
    if tracker is None:
        tracker = SloTracker(config=slo_config)
    own_telemetry = telemetry is None
    if telemetry is None and any(
        stream.is_corrupted(i) for i in range(stream.config.num_windows)
    ):
        telemetry = FaultTelemetry()

    was_training = snn.training
    snn.eval()
    recording_before = [n.recording for n in snn.spiking_neurons()]
    snn.set_recording(True)
    window_size = stream.config.window_size
    records: List[dict] = []
    correct = total = 0
    clock = 0.0  # simulated serial service clock
    try:
        with no_grad(), snn.streaming():
            for window in stream:
                snn.reset_spike_stats()
                window_correct = 0
                started = time.perf_counter()
                if window.fault_spec is not None:
                    with snn.inject_faults(window.fault_spec, telemetry=telemetry):
                        window_correct = _forward_chunks(
                            snn, window, window_size, normalize
                        )
                else:
                    window_correct = _forward_chunks(
                        snn, window, window_size, normalize
                    )
                latency_s = time.perf_counter() - started
                frames = window.frames
                accuracy = window_correct / frames
                correct += window_correct
                total += frames
                spikes_per_frame = (
                    snn.total_spikes() / frames if frames else 0.0
                )
                # Serial service: a window starts when it has arrived
                # AND the previous one finished; its result is stale by
                # (finish - arrival).
                start_s = max(clock, window.arrival_s)
                clock = start_s + latency_s
                staleness_s = clock - window.arrival_s
                record = tracker.observe_window(
                    index=window.index,
                    latency_s=latency_s,
                    staleness_s=staleness_s,
                    accuracy=accuracy,
                    frames=frames,
                    spikes_per_frame=spikes_per_frame,
                    burst=window.burst,
                    corrupted=window.corrupted,
                )
                records.append(record)
                if verbose:
                    flags = "".join(
                        flag
                        for flag, on in (("B", window.burst), ("C", window.corrupted))
                        if on
                    )
                    print(
                        f"window {window.index:>4} {flags:<2} "
                        f"lat={latency_s * 1e3:7.1f}ms "
                        f"stale={staleness_s * 1e3:7.1f}ms "
                        f"acc={accuracy:.3f}"
                        + (
                            f" breach={','.join(record['breaches'])}"
                            if record["breaches"]
                            else ""
                        )
                    )
    finally:
        snn.train(was_training)
        for neuron, previous in zip(snn.spiking_neurons(), recording_before):
            neuron.recording = previous
        if own_telemetry and telemetry is not None:
            telemetry.close()
        summary = tracker.summary()
        if own_tracker:
            tracker.close()
    return StreamResult(
        windows=summary["windows"],
        frames=summary["frames"],
        accuracy=correct / total if total else 0.0,
        breaches=dict(summary["breaches"]),
        summary=summary,
        records=records,
    )


def _forward_chunks(snn, window, window_size: int, normalize) -> int:
    """Push the window's sub-batches through the network; returns the
    number of correct top-1 predictions."""
    correct = 0
    for chunk in range(window.chunks):
        rows = slice(chunk * window_size, (chunk + 1) * window_size)
        batch = window.images[rows]
        if normalize is not None:
            batch = normalize(batch)
        logits = snn(batch)
        correct += int(
            (logits.data.argmax(axis=1) == window.labels[rows]).sum()
        )
    return correct
