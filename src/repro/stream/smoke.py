"""Streaming + canary smoke run (``make stream-smoke``).

Serves a short seeded synthetic stream through a micro SNN under an
observed run and asserts the whole SLO/canary surface end to end:

- the run directory carries schema-valid ``slo.jsonl`` /
  ``slo_summary.json`` and the run registry inventories both;
- the injected burst windows raise a latency SLO breach that is
  visible in the ``slo_breach`` alert stream, in ``dashboard --once``
  and in the rendered report;
- a **self-canary** (identical-seed candidate vs. the tagged baseline
  serving the same parameters) exits 0 — the gate never flaps on
  wall-clock noise;
- a **degraded candidate** (half the weights pruned) exits 1 through
  the direction-aware diff engine.

The registry root is redirected to a smoke-private directory so the
baseline tag this smoke plants never clobbers the repo-level registry.
"""

from __future__ import annotations

import argparse
import contextlib
import io
import json
import os
import shutil

import numpy as np


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.stream.smoke",
        description="Streaming SLO + canary gate smoke run.",
    )
    parser.add_argument("--root", default=os.path.join("results", "smoke_stream"))
    parser.add_argument("--report", action="store_true",
                        help="print the baseline run's rendered report")
    args = parser.parse_args(argv)

    from ..obs.registry import ENV_ROOT_VAR

    root = args.root
    shutil.rmtree(root, ignore_errors=True)
    os.makedirs(root, exist_ok=True)
    # Smoke-private registry: the baseline tag below must not overwrite
    # whatever the user has tagged in the repo-level runs/ registry.
    previous_root = os.environ.get(ENV_ROOT_VAR)
    os.environ[ENV_ROOT_VAR] = os.path.join(root, "runs")
    try:
        return _run(args, root, parser)
    finally:
        if previous_root is None:
            os.environ.pop(ENV_ROOT_VAR, None)
        else:
            os.environ[ENV_ROOT_VAR] = previous_root


def _run(args, root: str, parser) -> int:
    from dataclasses import replace

    from ..experiments.config import SCALES, ExperimentConfig
    from ..experiments.pipeline import run_pipeline
    from ..obs import SLOConfig, load_run, observe, render_report, state
    from ..obs.dashboard import main as dashboard_main
    from ..obs.registry import RunRegistry, registration_enabled
    from ..obs.slo import SLO_FILENAME, SLO_SCHEMA, SLO_SUMMARY_FILENAME
    from .__main__ import main as stream_main
    from .canary import MODEL_FILENAME, STREAM_META_FILENAME, save_stream_bundle
    from .generator import StreamConfig, SyntheticStream
    from .runner import run_stream

    scale = replace(
        SCALES["tiny"],
        name="smoke",
        image_size=8,
        train_size=60,
        test_size=30,
        width_multiplier=0.125,
        batch_size=30,
        dnn_epochs=2,
        snn_epochs=1,
        calibration_batches=1,
    )
    config = ExperimentConfig(
        arch="vgg11", dataset="cifar10", timesteps=2, scale=scale
    )
    # Bursts multiply a window's wall-clock ~6x against a 3x-median
    # target, so the latency breach fires deterministically; the
    # accuracy floor is 0 because this micro model's accuracy is not
    # the objective under test here (the canary gates on it instead).
    stream_config = StreamConfig(
        window_size=8, num_windows=16, seed=7,
        burst_every=5, burst_factor=6, corrupt_every=7,
    )
    slo_config = SLOConfig(window=8, accuracy_floor=0.0, calibration_windows=4)

    baseline_dir = os.path.join(root, "baseline")
    candidate_dir = os.path.join(root, "candidate")
    run_ids = []
    for run_dir in (baseline_dir, candidate_dir):
        with observe(run_dir, kind="stream", smoke=True):
            run_ids.append(state().run_id)
            pipeline = run_pipeline(config, fine_tune=False)
            stream = SyntheticStream(pipeline.context.dataset, stream_config)
            result = run_stream(
                pipeline.snn, stream,
                normalize=pipeline.context.normalize,
                slo_config=slo_config,
            )
            save_stream_bundle(
                pipeline.snn, config, stream_config, run_dir,
                slo_config=slo_config,
            )

    # --- SLO artefacts: present, schema-valid, breach recorded --------
    slo_path = os.path.join(baseline_dir, SLO_FILENAME)
    if not os.path.exists(slo_path) or os.path.getsize(slo_path) == 0:
        print(f"SMOKE FAILED: empty or missing {slo_path}")
        return 1
    with open(slo_path, "r", encoding="utf-8") as fp:
        records = [json.loads(line) for line in fp if line.strip()]
    bad = [r for r in records
           if r.get("schema") != SLO_SCHEMA
           or r.get("kind") not in ("window", "breach")]
    if bad:
        print(f"SMOKE FAILED: {len(bad)} slo.jsonl record(s) off-schema")
        return 1
    windows = [r for r in records if r["kind"] == "window"]
    if len(windows) != stream_config.num_windows:
        print(f"SMOKE FAILED: expected {stream_config.num_windows} window "
              f"records, got {len(windows)}")
        return 1
    with open(os.path.join(baseline_dir, SLO_SUMMARY_FILENAME),
              encoding="utf-8") as fp:
        summary = json.load(fp)
    if summary.get("schema") != SLO_SCHEMA:
        print(f"SMOKE FAILED: slo_summary schema is {summary.get('schema')!r}")
        return 1
    if not summary.get("breaches", {}).get("latency"):
        print("SMOKE FAILED: burst windows raised no latency SLO breach "
              f"(breaches: {summary.get('breaches')})")
        return 1

    # --- breach alert went through the health/alerts path -------------
    alerts_path = os.path.join(baseline_dir, "alerts.jsonl")
    slo_alerts = []
    if os.path.exists(alerts_path):
        with open(alerts_path, "r", encoding="utf-8") as fp:
            slo_alerts = [
                json.loads(line) for line in fp
                if line.strip() and '"slo_breach"' in line
            ]
    if not slo_alerts:
        print("SMOKE FAILED: no slo_breach alert in alerts.jsonl")
        return 1

    # --- registry inventories the SLO artefacts -----------------------
    if registration_enabled():
        registry = RunRegistry()
        for run_id in run_ids:
            entry = registry.get(run_id)
            if entry is None or entry.get("status") != "completed":
                print(f"SMOKE FAILED: run {run_id} not completed in registry")
                return 1
            artifacts = entry.get("artifacts") or {}
            for name in (SLO_FILENAME, SLO_SUMMARY_FILENAME,
                         MODEL_FILENAME, STREAM_META_FILENAME):
                if name not in artifacts:
                    print(f"SMOKE FAILED: registry inventory of {run_id} "
                          f"is missing {name!r}")
                    return 1
        registry.set_baseline(run_ids[0])

    # --- dashboard --once and the report surface the breach -----------
    buffer = io.StringIO()
    with contextlib.redirect_stdout(buffer):
        code = dashboard_main([baseline_dir, "--once"])
    frame = buffer.getvalue()
    if code != 0:
        print(f"SMOKE FAILED: dashboard --once exited {code}")
        return 1
    for needle in ("latency:BREACH", "breach log", "slo_breach"):
        if needle not in frame:
            print(f"SMOKE FAILED: dashboard --once frame lacks {needle!r}")
            return 1
    report = render_report(load_run(baseline_dir))
    for needle in ("## Streaming SLO", "Breach log", "slo_breach"):
        if needle not in report:
            print(f"SMOKE FAILED: report lacks {needle!r}")
            return 1

    # --- self-canary: identical parameters must promote ---------------
    code = stream_main(["canary", candidate_dir, "--baseline",
                        "--out", os.path.join(root, "canary_self")])
    if code != 0:
        print(f"SMOKE FAILED: identical-seed self-canary exited {code}, "
              "expected 0 (promote)")
        return 1
    with open(os.path.join(candidate_dir, "canary.json"),
              encoding="utf-8") as fp:
        verdict = json.load(fp)
    if verdict.get("verdict") != "promote":
        print(f"SMOKE FAILED: self-canary verdict is "
              f"{verdict.get('verdict')!r}")
        return 1

    # --- degraded candidate: pruned weights must roll back ------------
    degraded_dir = os.path.join(root, "degraded")
    os.makedirs(degraded_dir, exist_ok=True)
    shutil.copy(os.path.join(candidate_dir, STREAM_META_FILENAME),
                os.path.join(degraded_dir, STREAM_META_FILENAME))
    with np.load(os.path.join(candidate_dir, MODEL_FILENAME)) as archive:
        payload = {key: archive[key].copy() for key in archive.files}
    rng = np.random.default_rng(0)
    for key, value in payload.items():
        if not key.startswith("__meta__") and value.ndim >= 2:
            value *= rng.random(value.shape) > 0.5
    np.savez(os.path.join(degraded_dir, MODEL_FILENAME), **payload)
    code = stream_main(["canary", degraded_dir, "--baseline",
                        "--out", os.path.join(root, "canary_degraded")])
    if code != 1:
        print(f"SMOKE FAILED: degraded-candidate canary exited {code}, "
              "expected 1 (rollback)")
        return 1
    report = render_report(load_run(os.path.join(root, "canary_degraded",
                                                 "candidate")))
    if "Canary verdict" not in report or "ROLLBACK" not in report:
        print("SMOKE FAILED: rollback replay report lacks the canary "
              "verdict section")
        return 1

    if args.report:
        print(render_report(load_run(baseline_dir)))
    print(
        f"stream smoke ok: {len(windows)} windows served, "
        f"breaches {dict(sorted(summary['breaches'].items()))}, "
        f"{len(slo_alerts)} slo_breach alert(s), "
        "self-canary promoted, degraded canary rolled back "
        f"(artefacts: {root})"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
