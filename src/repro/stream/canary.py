"""Canary release gate: replay one seeded stream through two models.

A streaming run traced with ``python -m repro.stream run --trace DIR``
leaves a *stream bundle* in its run directory: the served model's
parameters (``model.npz``) plus ``stream_meta.json`` (the experiment
config, the stream schedule and the SLO config, all JSON).  The canary
gate (``python -m repro.stream canary CANDIDATE --baseline``) then:

1. resolves the candidate and baseline bundles (a run directory path or
   a run-registry id; ``--baseline`` without a value resolves the
   registry's tagged baseline via
   :meth:`repro.obs.registry.RunRegistry.require_baseline`);
2. rebuilds both SNNs deterministically — the conversion skeleton from
   the recorded experiment config, then the bundled parameters loaded
   over it;
3. replays the **candidate's** recorded stream (identical seeded
   traffic, frame-for-frame) through each model into a fresh observed
   run directory, with the latency / staleness targets pinned to
   ``inf`` — wall-clock noise must never flap a release gate, so only
   the deterministic objectives (sliding accuracy, breach counts,
   spike traffic) are produced for gating;
4. diffs the two replay directories with the direction-aware run-diff
   engine (:func:`repro.obs.diff.diff_run_dirs`) and turns its verdict
   into **promote** (exit 0) or **rollback** (exit 1), persisted as
   ``canary.json`` in both the candidate replay and the candidate's
   original run directory — :mod:`repro.obs.report` renders it as the
   "Canary verdict" section.
"""

from __future__ import annotations

import dataclasses
import json
import math
import os
import time
from dataclasses import dataclass
from typing import Optional, Tuple

from ..experiments.config import ExperimentConfig, ScalePreset
from ..experiments.pipeline import convert_only
from ..obs import observe
from ..obs.diff import DEFAULT_ATOL, DEFAULT_RTOL, RunDiff, diff_run_dirs
from ..obs.registry import BaselineError, RunRegistry
from ..obs.slo import SLOConfig
from ..utils.checkpoint import load_checkpoint, save_checkpoint
from .generator import StreamConfig, SyntheticStream
from .runner import StreamResult, run_stream

CANARY_SCHEMA = "repro.obs.canary/v1"
CANARY_SCHEMA_VERSION = 1
CANARY_FILENAME = "canary.json"
STREAM_META_SCHEMA = "repro.stream.meta/v1"
STREAM_META_FILENAME = "stream_meta.json"
MODEL_FILENAME = "model.npz"

__all__ = [
    "CANARY_FILENAME",
    "CANARY_SCHEMA",
    "CanaryError",
    "CanaryResult",
    "MODEL_FILENAME",
    "STREAM_META_FILENAME",
    "load_stream_meta",
    "rebuild_model",
    "run_canary",
    "save_stream_bundle",
]


class CanaryError(RuntimeError):
    """A canary replay could not be set up (bad refs, missing bundle)."""


# ----------------------------------------------------------------------
# Stream bundles
# ----------------------------------------------------------------------
def save_stream_bundle(
    snn,
    config: ExperimentConfig,
    stream_config: StreamConfig,
    run_dir: str,
    slo_config: Optional[SLOConfig] = None,
) -> str:
    """Persist everything a canary replay needs into ``run_dir``.

    Writes ``model.npz`` (the served parameters) and
    ``stream_meta.json`` (experiment + stream + SLO config); returns the
    meta path.
    """
    os.makedirs(run_dir, exist_ok=True)
    save_checkpoint(snn, os.path.join(run_dir, MODEL_FILENAME))
    meta = {
        "schema": STREAM_META_SCHEMA,
        "schema_version": 1,
        "ts": time.time(),
        "experiment": dataclasses.asdict(config),
        "stream": stream_config.as_dict(),
    }
    if slo_config is not None:
        meta["slo"] = {
            "window": slo_config.window,
            "accuracy_floor": slo_config.accuracy_floor,
            "calibration_windows": slo_config.calibration_windows,
        }
    path = os.path.join(run_dir, STREAM_META_FILENAME)
    with open(path, "w", encoding="utf-8") as fp:
        json.dump(meta, fp, indent=2, sort_keys=True)
    return path


def load_stream_meta(run_dir: str) -> dict:
    """Read and validate a bundle's ``stream_meta.json``."""
    path = os.path.join(run_dir, STREAM_META_FILENAME)
    if not os.path.exists(path):
        raise CanaryError(
            f"'{run_dir}' holds no {STREAM_META_FILENAME} — not a stream "
            "bundle (produce one with `python -m repro.stream run --trace "
            f"{run_dir}`)"
        )
    try:
        with open(path, "r", encoding="utf-8") as fp:
            meta = json.load(fp)
    except (json.JSONDecodeError, OSError) as exc:
        raise CanaryError(f"unreadable {path}: {exc}") from exc
    if not isinstance(meta, dict) or "experiment" not in meta or "stream" not in meta:
        raise CanaryError(f"{path} is not a {STREAM_META_SCHEMA} bundle")
    return meta


def experiment_config_from_meta(meta: dict) -> ExperimentConfig:
    """Reconstruct the bundle's :class:`ExperimentConfig`."""
    payload = dict(meta["experiment"])
    scale = payload.pop("scale")
    if isinstance(scale, dict):
        scale = ScalePreset(**scale)
    return ExperimentConfig(scale=scale, **payload)


def rebuild_model(run_dir: str, meta: Optional[dict] = None) -> Tuple[object, object]:
    """``(snn, context)`` of the bundle in ``run_dir``.

    The conversion skeleton is rebuilt from the recorded experiment
    config (module structure depends only on the config, not on
    calibration values), then ``model.npz`` overwrites every parameter
    — so the replayed network is parameter-identical to the one that
    was served.
    """
    meta = meta if meta is not None else load_stream_meta(run_dir)
    model_path = os.path.join(run_dir, MODEL_FILENAME)
    if not os.path.exists(model_path):
        raise CanaryError(
            f"'{run_dir}' holds no {MODEL_FILENAME} — the stream bundle "
            "is incomplete"
        )
    config = experiment_config_from_meta(meta)
    conversion = convert_only(config)
    snn = conversion.snn
    load_checkpoint(snn, model_path, strict=True)
    from ..experiments.context import get_context

    return snn, get_context(config)


def _resolve_ref(ref: str, registry: RunRegistry, role: str) -> str:
    """A bundle ref (directory path or registry run id) to a directory."""
    if os.path.isdir(ref):
        return ref
    entry = registry.get(ref)
    if entry is None:
        raise CanaryError(
            f"{role} '{ref}' is neither a directory nor a registered run id"
        )
    run_dir = entry.get("run_dir")
    if not run_dir or not os.path.isdir(run_dir):
        raise CanaryError(
            f"{role} run '{entry.get('run_id', ref)}' points at a missing "
            f"directory ({run_dir}) — re-run it or pass a live bundle path"
        )
    return run_dir


def _replay_slo_config(meta: dict) -> SLOConfig:
    """The gating SLO config for replays: recorded accuracy objective,
    wall-clock objectives disabled (``inf`` targets) so the verdict is a
    pure function of models + seeded traffic."""
    slo_meta = meta.get("slo") or {}
    return SLOConfig(
        window=int(slo_meta.get("window", 32)),
        latency_target_s=math.inf,
        staleness_target_s=math.inf,
        accuracy_floor=float(slo_meta.get("accuracy_floor", 0.5)),
        calibration_windows=int(slo_meta.get("calibration_windows", 8)),
    )


# ----------------------------------------------------------------------
# The gate
# ----------------------------------------------------------------------
@dataclass
class CanaryResult:
    """Outcome of one canary comparison."""

    verdict: str  # "promote" | "rollback"
    diff: RunDiff
    candidate_dir: str
    baseline_dir: str
    candidate_replay: str
    baseline_replay: str
    candidate_result: StreamResult
    baseline_result: StreamResult
    payload: dict

    @property
    def ok(self) -> bool:
        return self.verdict == "promote"


def run_canary(
    candidate_ref: str,
    baseline_ref: Optional[str] = None,
    registry: Optional[RunRegistry] = None,
    out_root: Optional[str] = None,
    rtol: float = DEFAULT_RTOL,
    atol: float = DEFAULT_ATOL,
    verbose: bool = False,
) -> CanaryResult:
    """Replay the candidate's recorded stream through candidate and
    baseline models and gate on the run diff.

    ``baseline_ref=None`` resolves the run registry's tagged baseline
    (raising :class:`CanaryError` with the registry's actionable message
    when the tag is absent or dangling).  Replay run directories land
    under ``out_root`` (default ``<candidate>/canary/``).
    """
    registry = registry if registry is not None else RunRegistry()
    candidate_dir = _resolve_ref(candidate_ref, registry, "candidate")
    if baseline_ref is None:
        try:
            entry = registry.require_baseline()
        except BaselineError as exc:
            raise CanaryError(str(exc)) from exc
        baseline_dir = entry["run_dir"]
    else:
        baseline_dir = _resolve_ref(baseline_ref, registry, "baseline")

    meta = load_stream_meta(candidate_dir)
    baseline_meta = load_stream_meta(baseline_dir)
    stream_config = StreamConfig.from_dict(meta["stream"])
    replay_slo = _replay_slo_config(meta)

    # Rebuild both models *before* opening any observed replay run so
    # the (possibly cached) DNN training never pollutes replay metrics.
    candidate_snn, candidate_ctx = rebuild_model(candidate_dir, meta)
    baseline_snn, baseline_ctx = rebuild_model(baseline_dir, baseline_meta)

    out_root = out_root or os.path.join(candidate_dir, "canary")
    replays = {}
    results = {}
    for role, snn, context in (
        ("baseline", baseline_snn, baseline_ctx),
        ("candidate", candidate_snn, candidate_ctx),
    ):
        replay_dir = os.path.join(out_root, role)
        # Both sides see the candidate's dataset prototypes: identical
        # seeded traffic is the whole point of a canary replay.
        stream = SyntheticStream(candidate_ctx.dataset, stream_config)
        with observe(replay_dir, kind="canary_replay", role=role):
            results[role] = run_stream(
                snn,
                stream,
                normalize=context.normalize,
                slo_config=replay_slo,
                verbose=verbose,
            )
        replays[role] = replay_dir

    diff = diff_run_dirs(
        replays["baseline"], replays["candidate"], rtol=rtol, atol=atol
    )
    verdict = "promote" if diff.ok else "rollback"
    payload = {
        "schema": CANARY_SCHEMA,
        "schema_version": CANARY_SCHEMA_VERSION,
        "ts": time.time(),
        "verdict": verdict,
        "ok": diff.ok,
        "rtol": rtol,
        "atol": atol,
        "stream": stream_config.as_dict(),
        "candidate": {
            "source": candidate_dir,
            "replay_dir": replays["candidate"],
            "accuracy": results["candidate"].accuracy,
            "breaches": results["candidate"].breaches,
        },
        "baseline": {
            "source": baseline_dir,
            "replay_dir": replays["baseline"],
            "accuracy": results["baseline"].accuracy,
            "breaches": results["baseline"].breaches,
        },
        "regressions": [
            {
                "name": d.name,
                "baseline": d.baseline,
                "candidate": d.candidate,
                "note": d.note,
            }
            for d in diff.regressions
        ],
    }
    for directory in (replays["candidate"], candidate_dir):
        with open(
            os.path.join(directory, CANARY_FILENAME), "w", encoding="utf-8"
        ) as fp:
            json.dump(payload, fp, indent=2, sort_keys=True)
    return CanaryResult(
        verdict=verdict,
        diff=diff,
        candidate_dir=candidate_dir,
        baseline_dir=baseline_dir,
        candidate_replay=replays["candidate"],
        baseline_replay=replays["baseline"],
        candidate_result=results["candidate"],
        baseline_result=results["baseline"],
        payload=payload,
    )
