"""Streaming inference: synthetic window streams, the warm-state
serving runner, SLO tracking and the canary release gate.

Quick start::

    from repro.experiments import ExperimentConfig, SCALES, run_pipeline
    from repro.stream import StreamConfig, SyntheticStream, run_stream

    result = run_pipeline(ExperimentConfig("vgg11", "cifar10", scale=SCALES["tiny"]))
    stream = SyntheticStream(result.context.dataset, StreamConfig(num_windows=16))
    outcome = run_stream(result.snn, stream, normalize=result.context.normalize)

or from the shell::

    python -m repro.stream run --scale tiny --trace results/stream_1
    python -m repro.stream canary results/stream_2 --baseline

The stream generator (:class:`SyntheticStream`) is deterministic per
``(seed, window index)``; the runner keeps membranes warm across
windows (:meth:`repro.snn.SpikingNetwork.streaming`) and feeds a
:class:`repro.obs.SloTracker`; the canary gate replays one recorded
stream through candidate and baseline models and promotes or rolls
back on the run-diff engine's verdict.
"""

from .canary import (
    CanaryError,
    CanaryResult,
    load_stream_meta,
    run_canary,
    save_stream_bundle,
)
from .generator import StreamConfig, StreamWindow, SyntheticStream
from .runner import StreamResult, run_stream

__all__ = [
    "CanaryError",
    "CanaryResult",
    "StreamConfig",
    "StreamResult",
    "StreamWindow",
    "SyntheticStream",
    "load_stream_meta",
    "run_canary",
    "run_stream",
    "save_stream_bundle",
]
