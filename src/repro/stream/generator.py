"""Seedable synthetic stream: endless frame windows over SynthCIFAR.

A *stream* chunks time into fixed-size windows of frames drawn from the
same class prototypes the model was trained on
(:class:`~repro.data.SyntheticImageDataset`), with the three
non-stationarities a serving deployment must survive:

- **drifting class mixture** — the label distribution of window ``w``
  rotates sinusoidally through the classes (period / strength
  configurable), so sliding-window accuracy genuinely moves over time;
- **burst-load phases** — every ``burst_every``-th window arrives with
  ``burst_factor`` times the frames, split into sub-batches of the
  normal window size (batch geometry stays constant, which the warm
  membrane carry requires) — the runner's wall-clock per window
  multiplies accordingly, the deterministic latency-SLO stressor;
- **corrupted frames** — every ``corrupt_every``-th window carries a
  :class:`repro.faults.FaultSpec` transmission spec (spike/frame drop)
  that the runner realises around that window's forward pass.

Windows are pure functions of ``(stream seed, window index)`` — random
access is deterministic, two streams with equal seeds are identical
frame-for-frame, and a canary replay feeds candidate and baseline
byte-identical traffic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional

import numpy as np

from ..data import SyntheticImageDataset
from ..faults import FaultSpec, TransmissionFaults


@dataclass(frozen=True)
class StreamConfig:
    """Shape and schedule of one synthetic stream.

    ``num_windows`` bounds iteration (:meth:`SyntheticStream.__iter__`);
    random access via :meth:`SyntheticStream.window` works for any
    index, so the stream is conceptually endless.
    """

    window_size: int = 16
    num_windows: int = 32
    seed: int = 0
    drift_period: int = 16
    drift_strength: float = 0.8
    burst_every: int = 0
    burst_factor: int = 4
    corrupt_every: int = 0
    spike_drop_rate: float = 0.3
    frame_drop_rate: float = 0.1
    arrival_interval_s: float = 0.05

    def __post_init__(self) -> None:
        if self.window_size <= 0 or self.num_windows <= 0:
            raise ValueError("window_size and num_windows must be positive")
        if self.drift_period <= 0:
            raise ValueError("drift_period must be positive")
        if not 0.0 <= self.drift_strength < 1.0:
            raise ValueError("drift_strength must lie in [0, 1)")
        if self.burst_every < 0 or self.corrupt_every < 0:
            raise ValueError("schedule periods must be non-negative")
        if self.burst_every and self.burst_factor < 2:
            raise ValueError("burst_factor must be at least 2")
        if self.arrival_interval_s < 0:
            raise ValueError("arrival_interval_s must be non-negative")

    def as_dict(self) -> dict:
        return {
            "window_size": self.window_size,
            "num_windows": self.num_windows,
            "seed": self.seed,
            "drift_period": self.drift_period,
            "drift_strength": self.drift_strength,
            "burst_every": self.burst_every,
            "burst_factor": self.burst_factor,
            "corrupt_every": self.corrupt_every,
            "spike_drop_rate": self.spike_drop_rate,
            "frame_drop_rate": self.frame_drop_rate,
            "arrival_interval_s": self.arrival_interval_s,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "StreamConfig":
        return cls(**{k: payload[k] for k in cls.__dataclass_fields__ if k in payload})


@dataclass
class StreamWindow:
    """One generated window of stream traffic.

    ``chunks`` sub-batches of exactly ``window_size`` frames each
    (``chunks > 1`` on burst windows); ``images`` is the concatenated
    ``(chunks * window_size, C, H, W)`` batch in ``[0, 1]``,
    un-normalised — the runner applies the model's training-time
    ``Normalize``.
    """

    index: int
    images: np.ndarray
    labels: np.ndarray
    chunks: int
    arrival_s: float
    burst: bool = False
    corrupted: bool = False
    fault_spec: Optional[FaultSpec] = None
    mixture: Optional[np.ndarray] = field(default=None, repr=False)

    @property
    def frames(self) -> int:
        return int(self.labels.size)


class SyntheticStream:
    """Deterministic window stream over a dataset's class prototypes.

    The dataset supplies the class-specific Fourier prototypes (and the
    rendering geometry), so stream frames are in-distribution for a
    model trained on that dataset; the stream config supplies the
    schedule (drift / bursts / corruption) and its own seed.
    """

    def __init__(
        self, dataset: SyntheticImageDataset, config: Optional[StreamConfig] = None
    ) -> None:
        self.dataset = dataset
        self.config = config if config is not None else StreamConfig()

    # ------------------------------------------------------------------
    def mixture(self, index: int) -> np.ndarray:
        """Class-mixture weights of window ``index`` (sums to one)."""
        cfg = self.config
        classes = self.dataset.num_classes
        phases = index / cfg.drift_period + np.arange(classes) / classes
        weights = 1.0 + cfg.drift_strength * np.sin(2 * np.pi * phases)
        weights = np.maximum(weights, 1e-6)
        return weights / weights.sum()

    def is_burst(self, index: int) -> bool:
        cfg = self.config
        return bool(cfg.burst_every) and index > 0 and index % cfg.burst_every == 0

    def is_corrupted(self, index: int) -> bool:
        cfg = self.config
        return (
            bool(cfg.corrupt_every) and index > 0 and index % cfg.corrupt_every == 0
        )

    def window(self, index: int) -> StreamWindow:
        """Render window ``index`` (deterministic random access)."""
        if index < 0:
            raise ValueError("window index must be non-negative")
        cfg = self.config
        data_cfg = self.dataset.config
        rng = np.random.default_rng([cfg.seed, index])
        burst = self.is_burst(index)
        chunks = cfg.burst_factor if burst else 1
        count = chunks * cfg.window_size
        mixture = self.mixture(index)
        labels = rng.choice(self.dataset.num_classes, size=count, p=mixture)
        phase_jitter = rng.normal(
            0.0, data_cfg.jitter_std, size=(count, data_cfg.components)
        )
        gains = rng.uniform(0.7, 1.3, size=count)
        shifts = rng.uniform(-0.15, 0.15, size=(count, 2))
        images = self.dataset._render(labels, phase_jitter, gains, shifts)
        images += rng.normal(0.0, data_cfg.noise_std, size=images.shape)
        np.clip(images, 0.0, 1.0, out=images)
        corrupted = self.is_corrupted(index)
        fault_spec = None
        if corrupted:
            fault_spec = FaultSpec(
                transmission=TransmissionFaults(
                    spike_drop_rate=cfg.spike_drop_rate,
                    frame_drop_rate=cfg.frame_drop_rate,
                ),
                seed=cfg.seed * 100_003 + index,
            )
        return StreamWindow(
            index=index,
            images=images.astype(np.float64),
            labels=labels.astype(np.int64),
            chunks=chunks,
            arrival_s=index * cfg.arrival_interval_s,
            burst=burst,
            corrupted=corrupted,
            fault_spec=fault_spec,
            mixture=mixture,
        )

    def __iter__(self) -> Iterator[StreamWindow]:
        for index in range(self.config.num_windows):
            yield self.window(index)

    def __len__(self) -> int:
        return self.config.num_windows
