"""Command-line streaming runner and canary gate.

::

    python -m repro.stream run --scale tiny --trace results/stream_1 \
        --windows 24 --burst-every 8 --tag-baseline
    python -m repro.stream canary results/stream_2 --baseline
    python -m repro.stream canary results/stream_2 --baseline results/stream_1

``run`` trains/converts the model (cached across invocations in one
process), replays a seeded synthetic stream through it with warm
membrane state, and — when traced — leaves the SLO artefacts
(``slo.jsonl`` / ``slo_summary.json``) plus the stream bundle
(``model.npz`` / ``stream_meta.json``) the canary gate consumes.

``canary`` exits 0 to promote and 1 to roll back (2 on usage errors),
so it can gate CI/CD directly.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from ..experiments.config import ExperimentConfig, get_scale
from ..obs import configure as obs_configure
from ..obs import console
from ..obs import shutdown as obs_shutdown
from ..obs.slo import SLOConfig

#: Sentinel for ``--baseline`` with no value: resolve the registry tag.
_REGISTRY_BASELINE = "@registry"


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.stream",
        description="Streaming inference runner and canary release gate.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_p = sub.add_parser("run", help="serve a seeded synthetic stream")
    run_p.add_argument("--arch", default="vgg11",
                       choices=["vgg11", "vgg16", "resnet20"])
    run_p.add_argument("--dataset", default="cifar10",
                       choices=["cifar10", "cifar100"])
    run_p.add_argument("--timesteps", type=int, default=2)
    run_p.add_argument("--scale", default="tiny",
                       choices=["tiny", "bench", "full"])
    run_p.add_argument("--seed", type=int, default=0)
    run_p.add_argument("--no-fine-tune", action="store_true",
                       help="serve the converted SNN without fine-tuning")
    stream_g = run_p.add_argument_group("stream schedule")
    stream_g.add_argument("--windows", type=int, default=32,
                          help="number of stream windows to serve")
    stream_g.add_argument("--window-size", type=int, default=16,
                          help="frames per window (sub-batch size)")
    stream_g.add_argument("--stream-seed", type=int, default=0)
    stream_g.add_argument("--drift-period", type=int, default=16)
    stream_g.add_argument("--drift-strength", type=float, default=0.8)
    stream_g.add_argument("--burst-every", type=int, default=0,
                          help="every Nth window carries burst load "
                               "(0 disables)")
    stream_g.add_argument("--burst-factor", type=int, default=4)
    stream_g.add_argument("--corrupt-every", type=int, default=0,
                          help="every Nth window arrives corrupted "
                               "(0 disables)")
    stream_g.add_argument("--arrival-interval", type=float, default=0.05,
                          help="seconds between window arrivals "
                               "(simulated clock)")
    slo_g = run_p.add_argument_group("service-level objectives")
    slo_g.add_argument("--slo-window", type=int, default=32,
                       help="sliding-window size (in stream windows)")
    slo_g.add_argument("--latency-target", type=float, default=None,
                       help="seconds; default auto-calibrates")
    slo_g.add_argument("--staleness-target", type=float, default=None,
                       help="seconds; default auto-calibrates")
    slo_g.add_argument("--accuracy-floor", type=float, default=0.5)
    slo_g.add_argument("--calibration-windows", type=int, default=8)
    run_p.add_argument("--trace", metavar="RUN_DIR", default=None,
                       help="enable observability; write SLO artefacts and "
                            "the canary stream bundle into RUN_DIR")
    run_p.add_argument("--tag-baseline", action="store_true",
                       help="tag this observed run as the run registry's "
                            "baseline (requires --trace)")
    run_p.add_argument("--verbose", action="store_true",
                       help="print one line per served window")

    canary_p = sub.add_parser(
        "canary",
        help="replay a candidate's stream against a baseline; "
             "exit 0 promote / 1 rollback",
    )
    canary_p.add_argument("candidate",
                          help="candidate stream bundle: run directory or "
                               "registry run id")
    canary_p.add_argument("--baseline", nargs="?", const=_REGISTRY_BASELINE,
                          default=_REGISTRY_BASELINE, metavar="REF",
                          help="baseline bundle (run directory or registry "
                               "run id); without a value, the registry's "
                               "tagged baseline")
    canary_p.add_argument("--out", default=None, metavar="DIR",
                          help="replay output root "
                               "(default: CANDIDATE/canary/)")
    canary_p.add_argument("--rtol", type=float, default=None)
    canary_p.add_argument("--atol", type=float, default=None)
    canary_p.add_argument("--json", action="store_true",
                          help="emit the canary verdict as JSON")
    canary_p.add_argument("--verbose", action="store_true")
    return parser


def _run_main(args, parser) -> int:
    from ..experiments.pipeline import run_pipeline
    from .canary import save_stream_bundle
    from .generator import StreamConfig, SyntheticStream
    from .runner import run_stream

    if args.tag_baseline and not args.trace:
        parser.error("--tag-baseline requires --trace RUN_DIR")
    config = ExperimentConfig(
        arch=args.arch,
        dataset=args.dataset,
        timesteps=args.timesteps,
        scale=get_scale(args.scale),
        seed=args.seed,
    )
    stream_config = StreamConfig(
        window_size=args.window_size,
        num_windows=args.windows,
        seed=args.stream_seed,
        drift_period=args.drift_period,
        drift_strength=args.drift_strength,
        burst_every=args.burst_every,
        burst_factor=args.burst_factor,
        corrupt_every=args.corrupt_every,
        arrival_interval_s=args.arrival_interval,
    )
    slo_config = SLOConfig(
        window=args.slo_window,
        latency_target_s=args.latency_target,
        staleness_target_s=args.staleness_target,
        accuracy_floor=args.accuracy_floor,
        calibration_windows=args.calibration_windows,
    )

    if args.trace:
        obs_configure(
            run_dir=args.trace,
            kind="stream",
            arch=args.arch,
            dataset=args.dataset,
            scale=args.scale,
            seed=args.seed,
            stream_seed=args.stream_seed,
        )
    status = "error"
    try:
        pipeline = run_pipeline(config, fine_tune=not args.no_fine_tune)
        stream = SyntheticStream(pipeline.context.dataset, stream_config)
        result = run_stream(
            pipeline.snn,
            stream,
            normalize=pipeline.context.normalize,
            slo_config=slo_config,
            verbose=args.verbose,
        )
        if args.trace:
            save_stream_bundle(
                pipeline.snn, config, stream_config, args.trace,
                slo_config=slo_config,
            )
        console(
            f"served {result.windows} window(s) / {result.frames} frame(s): "
            f"accuracy {result.accuracy:.4f}, "
            f"{result.breaches_total} SLO breach window(s)"
            + (
                " (" + ", ".join(
                    f"{k}: {v}" for k, v in sorted(result.breaches.items())
                ) + ")"
                if result.breaches else ""
            )
        )
        status = "completed"
        return 0
    finally:
        if args.trace:
            if args.tag_baseline:
                from ..experiments import pipeline as _pipeline

                _pipeline._tag_run_as_baseline()
            obs_shutdown(status=status)
            console(f"stream run written to {args.trace}")


def _canary_main(args) -> int:
    import json as _json

    from ..obs.diff import DEFAULT_ATOL, DEFAULT_RTOL
    from .canary import CanaryError, run_canary

    try:
        result = run_canary(
            args.candidate,
            baseline_ref=(
                None if args.baseline == _REGISTRY_BASELINE else args.baseline
            ),
            out_root=args.out,
            rtol=DEFAULT_RTOL if args.rtol is None else args.rtol,
            atol=DEFAULT_ATOL if args.atol is None else args.atol,
            verbose=args.verbose,
        )
    except CanaryError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.json:
        print(_json.dumps(result.payload, indent=2, sort_keys=True))
    else:
        print(result.diff.render())
        print()
        print(
            f"canary verdict: {result.verdict.upper()} "
            f"(candidate accuracy {result.candidate_result.accuracy:.4f} "
            f"vs baseline {result.baseline_result.accuracy:.4f})"
        )
    return 0 if result.ok else 1


def main(argv: Optional[List[str]] = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)
    if args.command == "run":
        return _run_main(args, parser)
    return _canary_main(args)


if __name__ == "__main__":
    raise SystemExit(main())
