"""repro — reproduction of "Can Deep Neural Networks be Converted to
Ultra Low-Latency Spiking Neural Networks?" (Datta & Beerel, DATE 2022).

Subpackages
-----------
- :mod:`repro.tensor` — numpy autograd substrate;
- :mod:`repro.nn` — layers (incl. the trainable-threshold ReLU, Eq. 1);
- :mod:`repro.optim` — SGD/Adam + the paper's LR schedule;
- :mod:`repro.models` — VGG-11/16, ResNet-20 (BN-free, dropout);
- :mod:`repro.data` — synthetic CIFAR-like datasets, loaders;
- :mod:`repro.snn` — IF/LIF neurons (Eqs. 2-4, 8), surrogate gradients,
  encoders, temporal execution;
- :mod:`repro.conversion` — Algorithm 1 (alpha/beta scaling), baseline
  conversion rules, the Eq. 5-7 error theory;
- :mod:`repro.train` — DNN training and SNN SGL fine-tuning;
- :mod:`repro.energy` — spikes / FLOPs / compute-energy models (Sec. VI);
- :mod:`repro.profiling` — time & memory accounting (Sec. V);
- :mod:`repro.experiments` — one driver per paper table/figure.

Quickstart
----------
>>> from repro.experiments import ExperimentConfig, get_scale, run_pipeline
>>> config = ExperimentConfig("vgg11", "cifar10", timesteps=2,
...                           scale=get_scale("tiny"))
>>> result = run_pipeline(config)
>>> sorted(result.as_row())[:2]
['architecture', 'conversion_accuracy']
"""

__version__ = "1.0.0"

__all__ = [
    "conversion",
    "data",
    "energy",
    "experiments",
    "models",
    "nn",
    "optim",
    "profiling",
    "snn",
    "tensor",
    "train",
]
