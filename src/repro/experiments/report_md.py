"""Markdown report generation from archived benchmark results.

Every benchmark saves its numbers as ``results/<name>.json``
(:func:`repro.experiments.reporting.save_results`).  This module turns
a results directory into a single markdown report — the mechanical part
of refreshing EXPERIMENTS.md after a new benchmark run.

Only the known artefact files are summarised (unknown JSON files are
listed in an appendix so nothing silently disappears).
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Optional


def _load(directory: str) -> Dict[str, dict]:
    payloads = {}
    if not os.path.isdir(directory):
        raise FileNotFoundError(f"no results directory at '{directory}'")
    for name in sorted(os.listdir(directory)):
        if name.endswith(".json"):
            with open(os.path.join(directory, name)) as handle:
                payloads[name[:-5]] = json.load(handle)
    if not payloads:
        raise ValueError(f"no .json results found in '{directory}'")
    return payloads


def _md_table(headers: List[str], rows: List[List]) -> str:
    def fmt(value) -> str:
        if isinstance(value, float):
            return f"{value:.4g}"
        return str(value)

    lines = [
        "| " + " | ".join(headers) + " |",
        "|" + "|".join("---" for _ in headers) + "|",
    ]
    for row in rows:
        lines.append("| " + " | ".join(fmt(v) for v in row) + " |")
    return "\n".join(lines)


def _table1_section(payloads: Dict[str, dict]) -> Optional[str]:
    rows = []
    for key, payload in payloads.items():
        if key.startswith("table1_"):
            rows.extend(payload.get("rows", []))
    if not rows:
        return None
    body = [
        [
            r["architecture"], r["dataset"], r["timesteps"],
            r["dnn_accuracy"], r["conversion_accuracy"], r["snn_accuracy"],
        ]
        for r in rows
    ]
    return "## Table I\n\n" + _md_table(
        ["arch", "dataset", "T", "DNN %", "conv %", "SGL %"], body
    )


def _table2_section(payloads: Dict[str, dict]) -> Optional[str]:
    sections = []
    for key, payload in sorted(payloads.items()):
        if not key.startswith("table2_"):
            continue
        rows = payload.get("rows", [])
        body = [
            [r["method"], r["timesteps"], r["accuracy"], r["dnn_reference"]]
            for r in rows
        ]
        sections.append(
            f"### {key.split('_', 1)[1]}\n\n"
            + _md_table(["method", "T", "accuracy %", "DNN ref %"], body)
        )
    if not sections:
        return None
    return "## Table II\n\n" + "\n\n".join(sections)


def _fig2_section(payloads: Dict[str, dict]) -> Optional[str]:
    sections = []
    for key, payload in sorted(payloads.items()):
        if not key.startswith("fig2_"):
            continue
        timesteps = payload["timesteps"]
        series = payload["series"]
        headers = ["T"] + list(series)
        body = [
            [t] + [series[s][i] for s in series]
            for i, t in enumerate(timesteps)
        ]
        sections.append(
            f"### {key.split('_', 1)[1]}\n\n" + _md_table(headers, body)
        )
    if not sections:
        return None
    return "## Fig. 2 — conversion accuracy vs T\n\n" + "\n\n".join(sections)


def _fig3_section(payloads: Dict[str, dict]) -> Optional[str]:
    sections = []
    for key, payload in sorted(payloads.items()):
        if not key.startswith("fig3_"):
            continue
        body = [
            [
                r["timesteps"], r["train_seconds_per_epoch"],
                r["inference_seconds_per_epoch"], r["train_memory_mb"],
                r["inference_memory_mb"],
            ]
            for r in payload.get("rows", [])
        ]
        sections.append(
            f"### {key.split('_', 1)[1]}\n\n"
            + _md_table(
                ["T", "train s/epoch", "infer s/epoch",
                 "train MB", "infer MB"],
                body,
            )
        )
    if not sections:
        return None
    return "## Fig. 3 — time & memory vs T\n\n" + "\n\n".join(sections)


def _fig4_section(payloads: Dict[str, dict]) -> Optional[str]:
    sections = []
    for key, payload in sorted(payloads.items()):
        if not key.startswith("fig4_"):
            continue
        body = [
            [
                p["label"], p["timesteps"], p["average_spike_rate"],
                p["total_flops"], p["energy_joules"],
                p["energy_improvement_vs_dnn"],
            ]
            for p in payload.get("profiles", [])
        ]
        body.append(
            ["iso-arch DNN", "-", "-", payload["dnn_total_flops"],
             payload["dnn_energy_joules"], 1.0]
        )
        sections.append(
            f"### {key.split('_', 1)[1]}\n\n"
            + _md_table(
                ["model", "T", "spikes/neuron", "FLOPs", "energy J", "DNN/SNN"],
                body,
            )
        )
    if not sections:
        return None
    return "## Fig. 4 — spikes / FLOPs / energy\n\n" + "\n\n".join(sections)


def _faults_section(payloads: Dict[str, dict]) -> Optional[str]:
    sections = []
    for key, payload in sorted(payloads.items()):
        if not (key.startswith("fault_sweep") or key.startswith("cli_faults")):
            continue
        timesteps = payload.get("timesteps", "?")
        for curve in payload.get("curves", []):
            body = []
            for i, level in enumerate(curve["levels"]):
                severity = (
                    "none" if level is None
                    else f"{level} bits" if curve["fault"] == "quantization"
                    else level
                )
                dnn = curve["dnn"][i] if curve["dnn"] is not None else "-"
                body.append(
                    [severity, dnn, curve["converted"][i], curve["finetuned"][i]]
                )
            sections.append(
                f"### {curve['fault']} "
                f"({payload.get('arch', '?')}, {payload.get('dataset', '?')})\n\n"
                + _md_table(
                    ["severity", "DNN %", f"converted (T={timesteps}) %",
                     f"fine-tuned (T={timesteps}) %"],
                    body,
                )
            )
    if not sections:
        return None
    return (
        "## Fault tolerance — accuracy vs fault severity\n\n"
        + "\n\n".join(sections)
    )


_KNOWN_PREFIXES = (
    "table1_", "table2_", "fig2_", "fig3_", "fig4_",
    "fault_sweep", "cli_faults",
)


def generate_report(
    directory: str = "results", title: str = "Benchmark results"
) -> str:
    """Render every archived result into one markdown document."""
    payloads = _load(directory)
    sections = [f"# {title}"]
    for builder in (_table1_section, _table2_section, _fig2_section,
                    _fig3_section, _fig4_section, _faults_section):
        section = builder(payloads)
        if section:
            sections.append(section)
    other = [
        key for key in payloads
        if not key.startswith(_KNOWN_PREFIXES)
    ]
    if other:
        sections.append(
            "## Other archived results\n\n"
            + "\n".join(f"- `{key}.json`" for key in sorted(other))
        )
    return "\n\n".join(sections) + "\n"


def write_report(
    path: str = "results/REPORT.md", directory: str = "results"
) -> str:
    """Generate and write the report; returns the path written."""
    report = generate_report(directory)
    with open(path, "w") as handle:
        handle.write(report)
    return path
