"""Command-line experiment runner.

Regenerate any paper table/figure from the shell:

    python -m repro.experiments table1 --scale tiny
    python -m repro.experiments table2 --dataset cifar10
    python -m repro.experiments fig1
    python -m repro.experiments fig2 --arch resnet20
    python -m repro.experiments fig3
    python -m repro.experiments fig4 --dataset cifar100
    python -m repro.experiments ablation
    python -m repro.experiments robustness --arch vgg11
    python -m repro.experiments faults --arch vgg11 --workers 4
    python -m repro.experiments multiseed --seeds 0 1 2 --workers 4
    python -m repro.experiments report          # results/*.json -> REPORT.md

``--workers N`` shards the fault sweep, the multiseed sweep, and
Algorithm 1's per-layer search over N supervised worker processes
(``repro.exec``); results are bitwise identical to ``--workers 1``.

Results print as the paper-style tables and are archived under
``results/`` as JSON.

Streaming-inference serving and canary release gating live in their
own entry point — ``python -m repro.stream run`` / ``canary`` — built
on the same pipeline and scale presets (see ``repro.stream``).
"""

from __future__ import annotations

import argparse

from ..obs import configure as obs_configure
from ..obs import console
from ..obs import shutdown as obs_shutdown

from . import (
    render_fault_sweep,
    render_fig1,
    render_noise_robustness,
    render_seed_sweep,
    run_fault_sweep,
    run_noise_robustness,
    seed_sweep,
    render_fig2,
    render_fig3,
    render_fig4,
    render_latency_ablation,
    render_scaling_ablation,
    render_table1,
    render_table2,
    run_fig1,
    run_fig2,
    run_fig3,
    run_fig4,
    run_latency_ablation,
    run_scaling_ablation,
    run_table1,
    run_table2,
    save_results,
)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "experiment",
        choices=[
            "table1", "table2", "fig1", "fig2", "fig3", "fig4",
            "ablation", "robustness", "faults", "multiseed", "report",
        ],
    )
    parser.add_argument("--scale", default="bench", choices=["tiny", "bench", "full"])
    parser.add_argument("--dataset", default="cifar10", choices=["cifar10", "cifar100"])
    parser.add_argument("--arch", default="vgg16",
                        choices=["vgg11", "vgg16", "resnet20"])
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--seeds", type=int, nargs="+", default=None,
                        help="seed list for the multiseed sweep "
                             "(default: 0 1 2)")
    parser.add_argument("--timesteps", type=int, default=2,
                        help="SNN timesteps for the multiseed sweep")
    parser.add_argument("--workers", type=int, default=1, metavar="N",
                        help="shard parallelisable work (fault sweep, "
                             "multiseed, Algorithm 1's per-layer search) "
                             "over N worker processes; results are "
                             "bitwise identical to --workers 1")
    parser.add_argument("--no-worker-telemetry", action="store_true",
                        help="keep worker observability quiesced even under "
                             "--trace (no worker_telemetry.jsonl, no "
                             "cross-process spans)")
    parser.add_argument("--no-save", action="store_true",
                        help="skip writing results/<experiment>.json")
    parser.add_argument("--trace", metavar="RUN_DIR", default=None,
                        help="enable observability; write events/trace/"
                             "metrics JSONL into RUN_DIR")
    parser.add_argument("--tag-baseline", action="store_true",
                        help="tag this observed run as the run registry's "
                             "diff baseline (requires --trace)")
    parser.add_argument("--profile", action="store_true",
                        help="also record an op-level performance profile "
                             "into RUN_DIR (requires --trace)")
    args = parser.parse_args(argv)

    if args.tag_baseline and not args.trace:
        parser.error("--tag-baseline requires --trace RUN_DIR")
    if args.profile and not args.trace:
        parser.error("--profile requires --trace RUN_DIR")
    if args.workers < 1:
        parser.error("--workers must be >= 1")

    # Install the ambient executor before obs_configure so the run
    # registry's environment fingerprint records the worker config and
    # cross-worker-count diffs can be flagged.
    from ..exec import ParallelExecutor, executor_scope

    telemetry = False if args.no_worker_telemetry else None
    executor = (
        ParallelExecutor(workers=args.workers, telemetry=telemetry)
        if args.workers > 1
        else None
    )
    with executor_scope(executor):
        if args.trace:
            obs_configure(
                run_dir=args.trace,
                profile=args.profile,
                experiment=args.experiment,
                arch=args.arch,
                dataset=args.dataset,
                scale=args.scale,
                seed=args.seed,
            )
        status = "error"
        try:
            code = _run(args)
            status = "completed"
            return code
        finally:
            if args.trace:
                if args.tag_baseline:
                    from . import pipeline as _pipeline

                    _pipeline._tag_run_as_baseline()
                obs_shutdown(status=status)
                console(f"trace written to {args.trace}")


def _run(args) -> int:
    if args.experiment == "report":
        from .report_md import write_report

        path = write_report()
        console(f"wrote {path}")
        return 0

    if args.experiment == "table1":
        rows = run_table1(scale_name=args.scale)
        console(render_table1(rows))
        payload = {"rows": rows}
    elif args.experiment == "table2":
        rows = run_table2(dataset=args.dataset, scale_name=args.scale, seed=args.seed)
        console(render_table2(rows))
        payload = {"rows": rows}
    elif args.experiment == "fig1":
        result = run_fig1(scale_name=args.scale, dataset=args.dataset, seed=args.seed)
        console(render_fig1(result))
        payload = {
            key: result[key]
            for key in ("mu", "d_max", "alpha", "beta", "k_mu", "h_t_mu")
        }
    elif args.experiment == "fig2":
        result = run_fig2(
            arch=args.arch, dataset=args.dataset,
            scale_name=args.scale, seed=args.seed,
        )
        console(render_fig2(result))
        payload = result
    elif args.experiment == "fig3":
        result = run_fig3(dataset=args.dataset, scale_name=args.scale, seed=args.seed)
        console(render_fig3(result))
        payload = result
    elif args.experiment == "fig4":
        result = run_fig4(dataset=args.dataset, scale_name=args.scale, seed=args.seed)
        console(render_fig4(result))
        payload = result
    elif args.experiment == "robustness":
        result = run_noise_robustness(
            arch=args.arch, dataset=args.dataset,
            scale_name=args.scale, seed=args.seed,
        )
        console(render_noise_robustness(result))
        payload = result
    elif args.experiment == "faults":
        result = run_fault_sweep(
            arch=args.arch, dataset=args.dataset,
            scale_name=args.scale, seed=args.seed,
        )
        console(render_fault_sweep(result))
        payload = result
    elif args.experiment == "multiseed":
        from .config import ExperimentConfig, get_scale

        config = ExperimentConfig(
            arch=args.arch, dataset=args.dataset,
            timesteps=args.timesteps, scale=get_scale(args.scale),
            seed=args.seed,
        )
        seeds = args.seeds if args.seeds is not None else [0, 1, 2]
        sweep = seed_sweep(config, seeds)
        console(render_seed_sweep(sweep))
        payload = {
            "arch": args.arch,
            "dataset": args.dataset,
            "timesteps": args.timesteps,
            "seeds": sweep.seeds,
            "dnn": sweep.dnn,
            "conversion": sweep.conversion,
            "snn": sweep.snn,
            "status": sweep.status,
            "failed_seeds": sweep.failed_seeds,
            "summary": sweep.summary(),
        }
    else:
        rows = run_scaling_ablation(
            dataset=args.dataset, scale_name=args.scale, seed=args.seed
        )
        console(render_scaling_ablation(rows))
        latency = run_latency_ablation(
            dataset=args.dataset, scale_name=args.scale, seed=args.seed
        )
        console()
        console(render_latency_ablation(latency))
        payload = {"scaling": rows, "latency": latency}

    if not args.no_save:
        path = save_results(f"cli_{args.experiment}", payload)
        console(f"\nsaved: {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
