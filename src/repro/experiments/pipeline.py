"""End-to-end pipeline: train DNN -> convert -> SGL fine-tune.

One run of :func:`run_pipeline` produces a Table-I row: the source DNN
accuracy (column a), the accuracy straight after DNN-to-SNN conversion
(column b — "far from SOTA, but a good initialisation"), and the
accuracy after surrogate-gradient fine-tuning in the SNN domain
(column c).

Fine-tuned SNNs are cached per (context, T, strategy) so figures that
reuse them (Figs. 3-4) do not retrain.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..conversion import ConversionConfig, ConversionResult, convert_dnn_to_snn
from ..obs import DriftMonitor, is_enabled
from ..obs import metrics as obs_metrics
from ..obs import monitored, trace
from ..snn import SpikingNetwork
from ..train import SNNTrainConfig, SNNTrainer, TrainingHistory, evaluate_snn
from .config import ExperimentConfig
from .context import ExperimentContext, get_context

_SNN_CACHE: Dict[tuple, "PipelineResult"] = {}


@dataclass
class PipelineResult:
    """All artefacts of one pipeline run (one Table-I row)."""

    config: ExperimentConfig
    context: ExperimentContext
    conversion: ConversionResult
    snn: SpikingNetwork
    dnn_accuracy: float
    conversion_accuracy: float
    snn_accuracy: float
    snn_history: Optional[TrainingHistory]

    def as_row(self) -> dict:
        return {
            "architecture": self.config.arch,
            "dataset": self.config.dataset,
            "timesteps": self.config.timesteps,
            "dnn_accuracy": self.dnn_accuracy,
            "conversion_accuracy": self.conversion_accuracy,
            "snn_accuracy": self.snn_accuracy,
        }


def convert_only(
    config: ExperimentConfig,
    strategy: str = "proposed",
    context: Optional[ExperimentContext] = None,
    **strategy_kwargs,
) -> ConversionResult:
    """Convert the (cached) trained DNN without fine-tuning."""
    context = context or get_context(config)
    conversion_config = ConversionConfig(
        timesteps=config.timesteps,
        strategy=strategy,
        calibration_batches=config.scale.calibration_batches,
        strategy_kwargs=strategy_kwargs,
    )
    return convert_dnn_to_snn(
        context.model, context.calibration_loader(), conversion_config
    )


def run_pipeline(
    config: ExperimentConfig,
    strategy: str = "proposed",
    fine_tune: bool = True,
    snn_lr: float = 5e-4,
    verbose: bool = False,
    record_drift: Optional[bool] = None,
) -> PipelineResult:
    """Run (or fetch from cache) the full hybrid-training pipeline.

    ``record_drift`` controls the per-layer conversion-drift telemetry
    (:class:`repro.obs.DriftMonitor` snapshots after conversion and
    again after fine-tuning); the default records exactly when an
    observed run is active.
    """
    key = (config.context_key(), config.timesteps, strategy, fine_tune, snn_lr)
    if key in _SNN_CACHE:
        return _SNN_CACHE[key]

    with trace.span(
        "run_pipeline",
        arch=config.arch,
        dataset=config.dataset,
        timesteps=config.timesteps,
        strategy=strategy,
    ) as pipeline_span:
        context = get_context(config, verbose=verbose)
        conversion = convert_only(config, strategy=strategy, context=context)
        test_loader = context.test_loader()
        # Post-conversion evaluation doubles as the spiking-activity
        # measurement pass: per-layer spike-rate and membrane-potential
        # histograms land in the metrics registry (Fig. 4 quantities).
        with trace.span("snn_eval", phase="post_conversion") as eval_span:
            with monitored(conversion.snn, prefix="snn"):
                conversion_accuracy = evaluate_snn(conversion.snn, test_loader)
            eval_span.set(accuracy=conversion_accuracy)

        # Conversion-drift telemetry: per-layer predicted-vs-measured
        # gap snapshots bracketing the SGL fine-tuning stage.
        drift = None
        if record_drift is None:
            record_drift = is_enabled()
        if record_drift:
            drift = DriftMonitor(conversion, context.model, test_loader)
            drift.snapshot("post_conversion")

        history = None
        if fine_tune:
            trainer = SNNTrainer(
                SNNTrainConfig(epochs=config.scale.snn_epochs, lr=snn_lr)
            )
            with trace.span("sgl_finetune", epochs=config.scale.snn_epochs):
                history = trainer.fit(
                    conversion.snn,
                    context.train_loader(seed=config.seed + 2),
                    test_loader,
                    verbose=verbose,
                )
        with trace.span("snn_eval", phase="final") as eval_span:
            snn_accuracy = evaluate_snn(conversion.snn, test_loader)
            eval_span.set(accuracy=snn_accuracy)
        if drift is not None:
            if fine_tune:
                drift.snapshot("post_finetune")
            drift.close()
        pipeline_span.set(
            dnn_accuracy=context.dnn_accuracy,
            conversion_accuracy=conversion_accuracy,
            snn_accuracy=snn_accuracy,
        )
        obs_metrics.gauge("pipeline.dnn_accuracy", context.dnn_accuracy)
        obs_metrics.gauge("pipeline.conversion_accuracy", conversion_accuracy)
        obs_metrics.gauge("pipeline.snn_accuracy", snn_accuracy)

    result = PipelineResult(
        config=config,
        context=context,
        conversion=conversion,
        snn=conversion.snn,
        dnn_accuracy=context.dnn_accuracy,
        conversion_accuracy=conversion_accuracy,
        snn_accuracy=snn_accuracy,
        snn_history=history,
    )
    _SNN_CACHE[key] = result
    return result


def clear_pipeline_cache() -> None:
    """Drop cached pipeline results (used by tests)."""
    _SNN_CACHE.clear()
