"""End-to-end pipeline: train DNN -> convert -> SGL fine-tune.

One run of :func:`run_pipeline` produces a Table-I row: the source DNN
accuracy (column a), the accuracy straight after DNN-to-SNN conversion
(column b — "far from SOTA, but a good initialisation"), and the
accuracy after surrogate-gradient fine-tuning in the SNN domain
(column c).

Fine-tuned SNNs are cached per (context, T, strategy) so figures that
reuse them (Figs. 3-4) do not retrain.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import Dict, Optional

from ..conversion import ConversionConfig, ConversionResult, convert_dnn_to_snn
from ..obs import DriftMonitor, get_logger, is_enabled, record_energy_profile
from ..obs import metrics as obs_metrics
from ..obs import monitored, state as obs_state, trace
from ..snn import SpikingNetwork
from ..train import (
    NonFiniteGuard,
    SNNTrainConfig,
    SNNTrainer,
    TrainingHistory,
    evaluate_snn,
)
from ..utils import CheckpointError, delay_interrupts, load_checkpoint, save_checkpoint
from .config import ExperimentConfig
from .context import ExperimentContext, get_context

_SNN_CACHE: Dict[tuple, "PipelineResult"] = {}

_STATE_FILENAME = "pipeline_state.json"
_SNN_CKPT_FILENAME = "snn_latest.npz"

_log = get_logger("pipeline")


def _pipeline_fingerprint(
    config: ExperimentConfig, strategy: str, fine_tune: bool, snn_lr: float
) -> dict:
    """Identity of one pipeline run — resume refuses to cross it."""
    return {
        "context_key": list(config.context_key()),
        "timesteps": config.timesteps,
        "strategy": strategy,
        "fine_tune": fine_tune,
        "snn_lr": snn_lr,
    }


def _write_pipeline_state(checkpoint_dir: str, state: dict) -> None:
    """Atomically persist the pipeline progress record.

    The temp-write + ``os.replace`` keeps the file itself atomic;
    ``delay_interrupts`` additionally defers SIGINT/SIGTERM across the
    sequence so a kill signal can never be handled between serialising
    and renaming (the deferred signal fires right after the rename).
    """
    os.makedirs(checkpoint_dir, exist_ok=True)
    path = os.path.join(checkpoint_dir, _STATE_FILENAME)
    tmp_path = f"{path}.tmp-{os.getpid()}"
    with delay_interrupts():
        try:
            with open(tmp_path, "w", encoding="utf-8") as handle:
                json.dump(state, handle, indent=2, sort_keys=True)
            os.replace(tmp_path, path)
        finally:
            if os.path.exists(tmp_path):
                os.remove(tmp_path)


def _read_pipeline_state(checkpoint_dir: str) -> Optional[dict]:
    path = os.path.join(checkpoint_dir, _STATE_FILENAME)
    if not os.path.exists(path):
        return None
    try:
        with open(path, "r", encoding="utf-8") as handle:
            return json.load(handle)
    except (OSError, ValueError) as exc:
        raise CheckpointError(
            f"corrupt pipeline state at '{path}': {exc}"
        ) from exc


@dataclass
class PipelineResult:
    """All artefacts of one pipeline run (one Table-I row)."""

    config: ExperimentConfig
    context: ExperimentContext
    conversion: ConversionResult
    snn: SpikingNetwork
    dnn_accuracy: float
    conversion_accuracy: float
    snn_accuracy: float
    snn_history: Optional[TrainingHistory]

    def as_row(self) -> dict:
        return {
            "architecture": self.config.arch,
            "dataset": self.config.dataset,
            "timesteps": self.config.timesteps,
            "dnn_accuracy": self.dnn_accuracy,
            "conversion_accuracy": self.conversion_accuracy,
            "snn_accuracy": self.snn_accuracy,
        }


def convert_only(
    config: ExperimentConfig,
    strategy: str = "proposed",
    context: Optional[ExperimentContext] = None,
    **strategy_kwargs,
) -> ConversionResult:
    """Convert the (cached) trained DNN without fine-tuning."""
    context = context or get_context(config)
    conversion_config = ConversionConfig(
        timesteps=config.timesteps,
        strategy=strategy,
        calibration_batches=config.scale.calibration_batches,
        strategy_kwargs=strategy_kwargs,
    )
    return convert_dnn_to_snn(
        context.model, context.calibration_loader(), conversion_config
    )


def run_pipeline(
    config: ExperimentConfig,
    strategy: str = "proposed",
    fine_tune: bool = True,
    snn_lr: float = 5e-4,
    verbose: bool = False,
    record_drift: Optional[bool] = None,
    checkpoint_dir: Optional[str] = None,
    resume: bool = False,
    checkpoint_every: int = 1,
    guard: Optional[NonFiniteGuard] = None,
    tag_baseline: bool = False,
) -> PipelineResult:
    """Run (or fetch from cache) the full hybrid-training pipeline.

    ``record_drift`` controls the per-layer conversion-drift telemetry
    (:class:`repro.obs.DriftMonitor` snapshots after conversion and
    again after fine-tuning); the default records exactly when an
    observed run is active.

    Resilience knobs:

    - ``checkpoint_dir`` enables periodic auto-checkpointing: every
      ``checkpoint_every`` fine-tuning epochs the SNN is saved
      (atomically) to ``snn_latest.npz`` alongside a
      ``pipeline_state.json`` progress record;
    - ``resume=True`` (requires ``checkpoint_dir``) picks a killed run
      back up: the DNN context and conversion are rebuilt
      deterministically, the latest SNN checkpoint is loaded, and
      fine-tuning restarts at the first incomplete epoch.  Resuming
      against a state file written by a *different* pipeline
      configuration raises :class:`~repro.utils.CheckpointError`;
    - ``guard`` forwards a :class:`~repro.train.NonFiniteGuard` to the
      fine-tuning loop (NaN/Inf detection with rollback + LR backoff).

    Under an observed run the final SNN additionally gets a Section-VI
    energy profile (``energy.*`` gauges via
    :func:`repro.obs.record_energy_profile`), and ``tag_baseline=True``
    marks the observed run as the run registry's comparison baseline
    for ``python -m repro.obs diff --baseline``.
    """
    if resume and checkpoint_dir is None:
        raise ValueError("resume=True requires checkpoint_dir")
    if checkpoint_every < 1:
        raise ValueError("checkpoint_every must be at least 1")
    key = (config.context_key(), config.timesteps, strategy, fine_tune, snn_lr)
    if key in _SNN_CACHE:
        return _SNN_CACHE[key]

    fingerprint = _pipeline_fingerprint(config, strategy, fine_tune, snn_lr)
    resumed_state: Optional[dict] = None
    if resume:
        state = _read_pipeline_state(checkpoint_dir)
        if state is not None:
            if state.get("fingerprint") != fingerprint:
                raise CheckpointError(
                    f"checkpoint_dir '{checkpoint_dir}' holds state for a "
                    f"different pipeline run "
                    f"(saved {state.get('fingerprint')}, "
                    f"requested {fingerprint}); use a fresh directory"
                )
            resumed_state = state

    with trace.span(
        "run_pipeline",
        arch=config.arch,
        dataset=config.dataset,
        timesteps=config.timesteps,
        strategy=strategy,
    ) as pipeline_span:
        context = get_context(config, verbose=verbose)
        conversion = convert_only(config, strategy=strategy, context=context)
        test_loader = context.test_loader()
        if resumed_state is not None:
            # The conversion above is deterministic, so its accuracy was
            # already measured before the interrupted run died — reuse
            # it instead of re-evaluating.
            conversion_accuracy = float(resumed_state["conversion_accuracy"])
        else:
            # Post-conversion evaluation doubles as the spiking-activity
            # measurement pass: per-layer spike-rate and
            # membrane-potential histograms land in the metrics registry
            # (Fig. 4 quantities).
            with trace.span("snn_eval", phase="post_conversion") as eval_span:
                with monitored(conversion.snn, prefix="snn"):
                    conversion_accuracy = evaluate_snn(
                        conversion.snn, test_loader
                    )
                eval_span.set(accuracy=conversion_accuracy)

        # Conversion-drift telemetry: per-layer predicted-vs-measured
        # gap snapshots bracketing the SGL fine-tuning stage.
        drift = None
        if record_drift is None:
            record_drift = is_enabled()
        if record_drift:
            drift = DriftMonitor(conversion, context.model, test_loader)
            drift.snapshot("post_conversion")

        history = None
        if fine_tune:
            snn_epochs = config.scale.snn_epochs
            start_epoch = 1
            if resumed_state is not None:
                ckpt_path = os.path.join(checkpoint_dir, _SNN_CKPT_FILENAME)
                load_checkpoint(conversion.snn, ckpt_path)
                start_epoch = int(resumed_state["completed_epochs"]) + 1
                if start_epoch > config.scale.snn_epochs:
                    _log.info(
                        f"fine-tuning already complete in '{checkpoint_dir}'; "
                        "loaded final weights",
                        checkpoint=ckpt_path,
                    )
                else:
                    _log.info(
                        f"resuming fine-tuning from epoch {start_epoch} "
                        f"(checkpoint '{ckpt_path}')",
                        start_epoch=start_epoch,
                        checkpoint=ckpt_path,
                    )

            on_epoch_end = None
            if checkpoint_dir is not None:
                def on_epoch_end(epoch, _history):
                    if epoch % checkpoint_every != 0 and epoch != snn_epochs:
                        return
                    # The weights archive and the progress record must
                    # advance together: a SIGTERM/Ctrl-C between the
                    # two would leave epoch-N weights with an epoch-N-1
                    # record and a resume would silently diverge.
                    with delay_interrupts():
                        save_checkpoint(
                            conversion.snn,
                            os.path.join(checkpoint_dir, _SNN_CKPT_FILENAME),
                        )
                        _write_pipeline_state(checkpoint_dir, {
                            "fingerprint": fingerprint,
                            "completed_epochs": epoch,
                            "total_epochs": snn_epochs,
                            "conversion_accuracy": conversion_accuracy,
                        })
                    obs_metrics.inc("pipeline.checkpoints_written")
                # A fresh guarded/checkpointed run records its starting
                # point so a kill before epoch 1 completes still resumes
                # cleanly (from the converted weights).
                if resumed_state is None:
                    with delay_interrupts():
                        save_checkpoint(
                            conversion.snn,
                            os.path.join(checkpoint_dir, _SNN_CKPT_FILENAME),
                        )
                        _write_pipeline_state(checkpoint_dir, {
                            "fingerprint": fingerprint,
                            "completed_epochs": 0,
                            "total_epochs": snn_epochs,
                            "conversion_accuracy": conversion_accuracy,
                        })

            if start_epoch <= snn_epochs:
                trainer = SNNTrainer(
                    SNNTrainConfig(epochs=snn_epochs, lr=snn_lr)
                )
                with trace.span("sgl_finetune", epochs=snn_epochs):
                    history = trainer.fit(
                        conversion.snn,
                        context.train_loader(seed=config.seed + 2),
                        test_loader,
                        verbose=verbose,
                        guard=guard,
                        on_epoch_end=on_epoch_end,
                        start_epoch=start_epoch,
                    )
        with trace.span("snn_eval", phase="final") as eval_span:
            snn_accuracy = evaluate_snn(conversion.snn, test_loader)
            eval_span.set(accuracy=snn_accuracy)
        if is_enabled():
            # Section-VI efficiency accounting of the final network —
            # energy.* gauges land in this run's metrics snapshot so the
            # diff engine can compare compute/energy across runs.
            record_energy_profile(
                conversion.snn,
                test_loader,
                context.input_shape,
                max_batches=config.scale.calibration_batches,
            )
        if drift is not None:
            if fine_tune:
                drift.snapshot("post_finetune")
            drift.close()
        pipeline_span.set(
            dnn_accuracy=context.dnn_accuracy,
            conversion_accuracy=conversion_accuracy,
            snn_accuracy=snn_accuracy,
        )
        obs_metrics.gauge("pipeline.dnn_accuracy", context.dnn_accuracy)
        obs_metrics.gauge("pipeline.conversion_accuracy", conversion_accuracy)
        obs_metrics.gauge("pipeline.snn_accuracy", snn_accuracy)
        if tag_baseline:
            _tag_run_as_baseline()

    result = PipelineResult(
        config=config,
        context=context,
        conversion=conversion,
        snn=conversion.snn,
        dnn_accuracy=context.dnn_accuracy,
        conversion_accuracy=conversion_accuracy,
        snn_accuracy=snn_accuracy,
        snn_history=history,
    )
    _SNN_CACHE[key] = result
    return result


def _tag_run_as_baseline() -> None:
    """Mark the active observed run as the registry's diff baseline."""
    from ..obs.registry import RunRegistry

    run_id = obs_state().run_id
    if run_id is None:
        _log.warning(
            "tag_baseline=True but no observed run is active; "
            "run under `with observe(run_dir): ...` (or --trace) to tag"
        )
        return
    try:
        RunRegistry().set_baseline(run_id)
        _log.info(f"tagged run {run_id} as the registry baseline")
    except (KeyError, OSError) as exc:
        # Registration is best-effort (disabled registry, in-memory
        # run); a failed tag must not fail the pipeline.
        _log.warning(f"could not tag baseline run: {exc}")


def clear_pipeline_cache() -> None:
    """Drop cached pipeline results (used by tests)."""
    _SNN_CACHE.clear()
