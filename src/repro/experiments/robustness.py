"""Input-noise robustness of the converted SNN vs the source DNN.

The paper's related work (HIRE-SNN, Kundu et al. [9], [26]) argues that
low-latency SNNs retain accuracy under input perturbations unusually
well — spiking discretisation acts as a denoiser.  This experiment
evaluates the trained DNN and its fine-tuned T-step SNN under
additive Gaussian pixel noise of increasing strength and reports the
accuracy-vs-noise curves.
"""

from __future__ import annotations

from typing import Dict, Sequence

import numpy as np

from ..data import AdditiveGaussianNoise, Compose, DataLoader, Normalize
from ..train import evaluate_dnn, evaluate_snn
from .config import ExperimentConfig, get_scale
from .context import get_context
from .pipeline import run_pipeline
from .reporting import format_table


def run_noise_robustness(
    arch: str = "vgg11",
    dataset: str = "cifar10",
    scale_name: str = "bench",
    timesteps: int = 2,
    noise_levels: Sequence[float] = (0.0, 0.05, 0.1, 0.2, 0.4),
    seed: int = 0,
) -> Dict:
    """Accuracy of DNN and SNN under additive Gaussian input noise."""
    scale = get_scale(scale_name)
    config = ExperimentConfig(
        arch=arch, dataset=dataset, timesteps=timesteps, scale=scale, seed=seed
    )
    result = run_pipeline(config)
    context = result.context
    mean, std = context.dataset.channel_stats()

    dnn_curve, snn_curve = [], []
    for noise in noise_levels:
        transform = Compose([
            AdditiveGaussianNoise(noise),
            Normalize(mean, std),
        ])
        loader = DataLoader(
            context.dataset.test_images,
            context.dataset.test_labels,
            batch_size=scale.batch_size,
            transform=transform,
            seed=seed + 10,
        )
        dnn_curve.append(evaluate_dnn(context.model, loader) * 100.0)
        loader = DataLoader(
            context.dataset.test_images,
            context.dataset.test_labels,
            batch_size=scale.batch_size,
            transform=transform,
            seed=seed + 10,
        )
        snn_curve.append(evaluate_snn(result.snn, loader) * 100.0)

    return {
        "arch": arch,
        "dataset": dataset,
        "timesteps": timesteps,
        "noise_levels": list(noise_levels),
        "dnn_accuracy": dnn_curve,
        "snn_accuracy": snn_curve,
    }


def run_adversarial_robustness(
    arch: str = "vgg11",
    dataset: str = "cifar10",
    scale_name: str = "bench",
    timesteps: int = 2,
    epsilons: Sequence[float] = (0.0, 0.05, 0.1, 0.2),
    seed: int = 0,
    max_batches: int = 2,
) -> Dict:
    """Accuracy of DNN and SNN under FGSM attacks of growing budget.

    The attack is computed against each model's *own* gradients (white
    box); the SNN gradient flows through the temporal unroll and the
    boxcar surrogate.
    """
    from ..train.attacks import fgsm_accuracy

    scale = get_scale(scale_name)
    config = ExperimentConfig(
        arch=arch, dataset=dataset, timesteps=timesteps, scale=scale, seed=seed
    )
    result = run_pipeline(config)
    context = result.context

    dnn_curve, snn_curve = [], []
    for epsilon in epsilons:
        dnn_curve.append(
            fgsm_accuracy(
                context.model, context.test_loader(),
                epsilon=epsilon, max_batches=max_batches,
            ) * 100.0
        )
        snn_curve.append(
            fgsm_accuracy(
                result.snn, context.test_loader(),
                epsilon=epsilon, max_batches=max_batches,
            ) * 100.0
        )
    return {
        "arch": arch,
        "dataset": dataset,
        "timesteps": timesteps,
        "epsilons": list(epsilons),
        "dnn_accuracy": dnn_curve,
        "snn_accuracy": snn_curve,
    }


def render_adversarial_robustness(result: Dict) -> str:
    rows = [
        [eps, dnn, snn]
        for eps, dnn, snn in zip(
            result["epsilons"], result["dnn_accuracy"], result["snn_accuracy"]
        )
    ]
    return format_table(
        ["FGSM eps", "DNN %", f"SNN (T={result['timesteps']}) %"],
        rows,
        title=f"Adversarial (FGSM) robustness ({result['arch']}, {result['dataset']})",
    )


def render_noise_robustness(result: Dict) -> str:
    rows = [
        [noise, dnn, snn]
        for noise, dnn, snn in zip(
            result["noise_levels"], result["dnn_accuracy"], result["snn_accuracy"]
        )
    ]
    return format_table(
        ["noise std", "DNN %", f"SNN (T={result['timesteps']}) %"],
        rows,
        title=f"Input-noise robustness ({result['arch']}, {result['dataset']})",
    )
