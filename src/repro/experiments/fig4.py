"""Fig. 4: spiking activity, FLOPs and compute energy (Section VI).

For VGG-16 on each dataset, compares:

- the proposed hybrid-trained SNN at T = 2 and 3;
- the 5-step direct-encoded hybrid baseline (Rathi et al. [7]);
- the 16-step optimally-converted SNN (Deng et al. [15]);
- the iso-architecture DNN (FLOPs / energy only).

Panels:
(a) per-layer average spike count (spikes per neuron per inference);
(b) total FLOPs (SNN: first-layer MACs x T + spike-driven ACs);
(c) compute energy under the 45 nm CMOS model (E_MAC = 3.2 pJ,
    E_AC = 0.1 pJ), plus the normalised neuromorphic estimates.

Paper headline numbers at full scale: 103.5x (CIFAR-10) and 159.2x
(CIFAR-100) energy reduction vs the DNN; 1.27-1.52x vs [7]; 4.7-5.2x
vs [15].  Expected shape here: SNN energy well below DNN energy and
monotonically increasing with T.
"""

from __future__ import annotations

from typing import Dict, List

from ..energy import (
    EnergyModel,
    dnn_total_flops,
    measure_spiking_activity,
    neuromorphic_energy,
    snn_layer_flops,
    snn_total_flops,
    trace_weight_layers,
)
from .config import ExperimentConfig, get_scale
from .context import get_context
from .pipeline import convert_only, run_pipeline
from .reporting import format_table


def _snn_profile(snn, context, label: str, max_batches: int = 2) -> dict:
    activity = measure_spiking_activity(
        snn, context.test_loader(), max_batches=max_batches
    )
    rates = activity.rates_by_neuron_id(snn)
    records = snn_layer_flops(snn, context.input_shape, rates)
    model = EnergyModel()
    total = snn_total_flops(records)
    return {
        "label": label,
        "timesteps": snn.timesteps,
        "per_layer_spike_rates": [
            layer.spikes_per_neuron for layer in activity.layers
        ],
        "average_spike_rate": activity.average_spikes_per_neuron,
        "total_flops": total,
        "energy_joules": model.snn_energy(records),
        "neuromorphic_truenorth": neuromorphic_energy(
            total, snn.timesteps, "truenorth"
        ),
        "neuromorphic_spinnaker": neuromorphic_energy(
            total, snn.timesteps, "spinnaker"
        ),
    }


def run_fig4(
    dataset: str = "cifar10",
    scale_name: str = "bench",
    seed: int = 0,
    fine_tune: bool = True,
) -> Dict:
    """Spikes / FLOPs / energy for every Fig. 4 competitor."""
    scale = get_scale(scale_name)
    base = ExperimentConfig(
        arch="vgg16", dataset=dataset, timesteps=2, scale=scale, seed=seed
    )
    context = get_context(base)
    model = EnergyModel()

    profiles: List[dict] = []
    for t in (2, 3):
        if fine_tune:
            snn = run_pipeline(base.with_timesteps(t)).snn
        else:
            snn = convert_only(base.with_timesteps(t), context=context).snn
        profiles.append(_snn_profile(snn, context, f"proposed T={t}"))

    # 5-step hybrid baseline (Rathi'20 style): the Deng-shift conversion
    # is the strongest prior rule available and stands in for DIET-SNN's
    # working threshold-balanced initialisation, followed by SGL.
    if fine_tune:
        hybrid = run_pipeline(
            base.with_timesteps(5), strategy="deng_shift"
        ).snn
    else:
        hybrid = convert_only(
            base.with_timesteps(5), strategy="deng_shift", context=context
        ).snn
    profiles.append(_snn_profile(hybrid, context, "hybrid T=5 [7]"))

    # 16-step optimal conversion (Deng'21), no SGL.
    deng = convert_only(
        base.with_timesteps(16), strategy="deng_shift", context=context
    ).snn
    profiles.append(_snn_profile(deng, context, "conversion T=16 [15]"))

    dnn_records = trace_weight_layers(context.model, context.input_shape)
    dnn_flops = sum(rec.macs for rec in dnn_records)
    dnn_energy = model.dnn_energy(dnn_records)
    for profile in profiles:
        profile["energy_improvement_vs_dnn"] = dnn_energy / profile["energy_joules"]

    return {
        "dataset": dataset,
        "profiles": profiles,
        "dnn_total_flops": dnn_flops,
        "dnn_energy_joules": dnn_energy,
    }


def render_fig4(result: Dict) -> str:
    headers = [
        "model",
        "T",
        "avg spikes/neuron",
        "total FLOPs",
        "energy (J)",
        "DNN/SNN energy",
    ]
    rows = [
        [
            p["label"],
            p["timesteps"],
            p["average_spike_rate"],
            p["total_flops"],
            p["energy_joules"],
            p["energy_improvement_vs_dnn"],
        ]
        for p in result["profiles"]
    ]
    rows.append(
        ["iso-arch DNN", "-", "-", result["dnn_total_flops"], result["dnn_energy_joules"], 1.0]
    )
    return format_table(
        headers,
        rows,
        title=f"Fig. 4 — spikes / FLOPs / energy (VGG-16, {result['dataset']})",
    )
