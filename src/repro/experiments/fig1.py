"""Fig. 1: activation functions, pre-activation distributions, h(T, mu).

Regenerates the three panels of Fig. 1(a) and the scaled staircase of
Fig. 1(b) for a chosen layer of the trained VGG-16:

- the DNN threshold-ReLU curve vs the SNN staircase (Eq. 5), the
  bias-shifted staircase of Deng et al., and the proposed
  ``alpha``/``beta``-scaled staircase;
- histograms of the DNN and SNN (T-step average) pre-activation values,
  exhibiting the skew (mass concentrated near zero) that breaks the
  uniform-distribution assumption;
- ``K(mu)`` and ``h(T, mu)`` for T = 1..5 — the paper's insert showing
  ``h`` collapsing below ``K ~ 1/2`` at ultra-low latency.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from ..conversion import h_t_mu, k_mu, snn_staircase
from ..nn import ActivationRecorder, ThresholdReLU
from ..snn import SpikingNeuron
from ..tensor import Tensor, no_grad
from .config import ExperimentConfig, get_scale
from .context import get_context
from .pipeline import convert_only


def _collect_dnn_samples(
    context, layer_index: int, max_batches: int
) -> np.ndarray:
    """Raw pre-activation samples of one ThresholdReLU layer."""
    layers = [
        m for m in context.model.modules() if isinstance(m, ThresholdReLU)
    ]
    layer = layers[layer_index]
    recorder = ActivationRecorder(max_samples=500_000)
    layer.recorder = recorder
    was_training = context.model.training
    context.model.eval()
    try:
        with no_grad():
            for index, (images, _labels) in enumerate(context.calibration_loader()):
                if index >= max_batches:
                    break
                context.model(Tensor(images))
    finally:
        context.model.train(was_training)
        layer.recorder = None
    return recorder.values()


def _collect_snn_average_currents(
    snn, layer_index: int, loader, max_batches: int
) -> np.ndarray:
    """Time-averaged input currents of one spiking layer.

    These are the empirical samples of the SNN pre-activation
    distribution ``f_S`` used by ``h(T, mu)``.
    """
    neurons: List[SpikingNeuron] = snn.spiking_neurons()
    neuron = neurons[layer_index]
    collected: List[np.ndarray] = []
    window: List[np.ndarray] = []
    original_forward = neuron.forward

    def recording_forward(current, _orig=original_forward):
        window.append(current.data.copy())
        return _orig(current)

    object.__setattr__(neuron, "forward", recording_forward)
    was_training = snn.training
    snn.eval()
    try:
        with no_grad():
            for index, (images, _labels) in enumerate(loader):
                if index >= max_batches:
                    break
                window.clear()
                snn(images)
                if window:
                    collected.append(np.mean(window, axis=0).reshape(-1))
    finally:
        snn.train(was_training)
        object.__setattr__(neuron, "forward", original_forward)
    if not collected:
        raise RuntimeError("no SNN currents were recorded")
    return np.concatenate(collected)


def run_fig1(
    scale_name: str = "bench",
    dataset: str = "cifar10",
    layer_index: int = 1,
    timesteps: int = 2,
    grid_points: int = 400,
    seed: int = 0,
    max_batches: int = 4,
) -> Dict:
    """Compute every series of Fig. 1 for one layer of VGG-16."""
    scale = get_scale(scale_name)
    config = ExperimentConfig(
        arch="vgg16", dataset=dataset, timesteps=timesteps, scale=scale, seed=seed
    )
    context = get_context(config)
    conversion = convert_only(config, strategy="proposed", context=context)
    stats = conversion.stats[layer_index]
    spec = conversion.specs[layer_index]
    mu, d_max = stats.mu, stats.d_max

    dnn_samples = _collect_dnn_samples(context, layer_index, max_batches)
    snn_samples = _collect_snn_average_currents(
        conversion.snn, layer_index, context.calibration_loader(), max_batches
    )

    # Activation curves over a pre-activation grid.
    grid = np.linspace(0.0, min(d_max, 2.0 * mu), grid_points)
    curves = {
        "dnn_threshold_relu": np.clip(grid, 0.0, mu),
        "snn_staircase": snn_staircase(grid, timesteps, mu),
        "snn_staircase_bias": snn_staircase(
            grid, timesteps, mu, bias_shift=mu / (2.0 * timesteps)
        ),
        "snn_staircase_scaled": snn_staircase(
            grid, timesteps, spec.v_threshold, beta=spec.beta
        ),
    }

    # Histograms (shared bins on [min, mu]).
    bins = np.linspace(
        min(dnn_samples.min(), snn_samples.min()), mu, 80
    )
    dnn_hist, _ = np.histogram(dnn_samples, bins=bins, density=True)
    snn_hist, _ = np.histogram(snn_samples, bins=bins, density=True)

    # K(mu) and the h(T, mu) insert for T = 1..5.
    k_value = k_mu(dnn_samples, mu)
    h_values = {t: h_t_mu(snn_samples, t, mu) for t in range(1, 6)}
    h_uniform = {
        t: h_t_mu(np.linspace(0.0, mu, 20_001), t, mu) for t in range(1, 6)
    }

    return {
        "layer_index": layer_index,
        "timesteps": timesteps,
        "mu": mu,
        "d_max": d_max,
        "alpha": spec.alpha,
        "beta": spec.beta,
        "v_threshold": spec.v_threshold,
        "grid": grid,
        "curves": curves,
        "histogram_bins": bins,
        "dnn_histogram": dnn_hist,
        "snn_histogram": snn_hist,
        "k_mu": k_value,
        "h_t_mu": h_values,
        "h_t_mu_uniform": h_uniform,
        "dnn_mass_below_third_of_dmax": float(
            (dnn_samples <= d_max / 3.0).mean()
        ),
    }


def render_fig1(result: Dict) -> str:
    """Human-readable summary of the Fig. 1 quantities."""
    lines = [
        "Fig. 1 — activation functions & distributions "
        f"(layer {result['layer_index']}, T={result['timesteps']})",
        f"  mu = {result['mu']:.4f}, d_max = {result['d_max']:.4f} "
        f"(mass below d_max/3: {result['dnn_mass_below_third_of_dmax']*100:.1f}%)",
        f"  alpha = {result['alpha']:.4f}, beta = {result['beta']:.4f}, "
        f"V^th = {result['v_threshold']:.4f}",
        f"  K(mu) = {result['k_mu']:.4f}",
        "  h(T, mu):  " + "  ".join(
            f"T={t}: {h:.4f}" for t, h in sorted(result["h_t_mu"].items())
        ),
        "  h uniform: " + "  ".join(
            f"T={t}: {h:.4f}" for t, h in sorted(result["h_t_mu_uniform"].items())
        ),
    ]
    return "\n".join(lines)
