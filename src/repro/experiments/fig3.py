"""Fig. 3: simulation time per epoch and memory vs SNN latency.

Compares the proposed 2- and 3-step hybrid training against the 5-step
direct-encoded baseline (Rathi et al. [7]) on:

(a) training and inference wall-clock time per epoch — both replay the
    layer pipeline once per step, so time grows ~linearly with T; the
    paper measures 2.38x (training) / 2.33x (inference) speedups at
    T=2 vs T=5;
(b) memory — training memory is the unrolled-BPTT activation footprint
    (measured with :class:`GraphMemoryMeter`), which also grows with T
    (paper: 1.44x lower at T=2); inference memory is nearly constant.

All approaches are timed under iso-batch conditions on the same model.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from ..nn import CrossEntropyLoss
from ..profiling import inference_memory, time_callable, training_memory
from ..tensor import no_grad
from .config import ExperimentConfig, get_scale
from .context import get_context
from .pipeline import convert_only
from .reporting import format_table


def _one_training_pass(snn, images, labels, criterion) -> None:
    snn.train()
    logits = snn(images)
    loss = criterion(logits, labels)
    loss.backward()
    snn.zero_grad()


def _one_inference_pass(snn, images) -> None:
    snn.eval()
    with no_grad():
        snn(images)


def run_fig3(
    dataset: str = "cifar10",
    scale_name: str = "bench",
    timesteps: Sequence[int] = (2, 3, 5),
    seed: int = 0,
    repeats: int = 2,
) -> Dict:
    """Time and memory for each latency under iso-batch conditions."""
    scale = get_scale(scale_name)
    base = ExperimentConfig(
        arch="vgg16", dataset=dataset, timesteps=2, scale=scale, seed=seed
    )
    context = get_context(base)
    images, labels = next(iter(context.train_loader(shuffle=False)))
    criterion = CrossEntropyLoss()
    batches_per_epoch = max(1, scale.train_size // scale.batch_size)

    rows: List[dict] = []
    for t in timesteps:
        conversion = convert_only(base.with_timesteps(t), context=context)
        snn = conversion.snn
        train_time = time_callable(
            lambda: _one_training_pass(snn, images, labels, criterion),
            repeats=repeats,
        )
        infer_time = time_callable(
            lambda: _one_inference_pass(snn, images), repeats=repeats
        )
        train_mem = training_memory(
            snn,
            lambda: _one_training_pass(snn, images, labels, criterion),
            optimizer_state_copies=2,
        )
        infer_mem = inference_memory(snn, context.input_shape, batch_size=scale.batch_size)
        rows.append(
            {
                "timesteps": t,
                "train_seconds_per_epoch": train_time.mean * batches_per_epoch,
                "inference_seconds_per_epoch": infer_time.mean * batches_per_epoch,
                "train_memory_mb": train_mem.total_megabytes,
                "inference_memory_mb": infer_mem.total_megabytes,
            }
        )

    baseline = rows[-1]  # largest T (the 5-step hybrid baseline)
    for row in rows:
        row["train_speedup_vs_5step"] = (
            baseline["train_seconds_per_epoch"] / row["train_seconds_per_epoch"]
        )
        row["inference_speedup_vs_5step"] = (
            baseline["inference_seconds_per_epoch"]
            / row["inference_seconds_per_epoch"]
        )
        row["memory_reduction_vs_5step"] = (
            baseline["train_memory_mb"] / row["train_memory_mb"]
        )
    return {"dataset": dataset, "rows": rows}


def render_fig3(result: Dict) -> str:
    headers = [
        "T",
        "train s/epoch",
        "infer s/epoch",
        "train mem MB",
        "infer mem MB",
        "train speedup",
        "mem reduction",
    ]
    rows = [
        [
            r["timesteps"],
            r["train_seconds_per_epoch"],
            r["inference_seconds_per_epoch"],
            r["train_memory_mb"],
            r["inference_memory_mb"],
            r["train_speedup_vs_5step"],
            r["memory_reduction_vs_5step"],
        ]
        for r in result["rows"]
    ]
    return format_table(
        headers,
        rows,
        title=f"Fig. 3 — time & memory vs T (VGG-16, {result['dataset']})",
    )
