"""Multi-seed robustness sweeps.

Reduced-scale runs are noisy; a claim like "the alpha/beta conversion
beats the unscaled one at T=2" is only meaningful if it holds across
seeds.  This module repeats the pipeline over a seed list and reports
mean/std/min/max for each accuracy stage, plus the per-seed win/loss
record of the proposed conversion against a baseline strategy.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .config import ExperimentConfig
from .pipeline import run_pipeline


@dataclass
class SeedSweepResult:
    """Aggregated accuracies over a seed sweep.

    ``failed_seeds`` lists seeds whose parallel task could not complete
    (quarantined / exhausted retries); their accuracies are excluded
    from the aggregation and the sweep is reported ``partial``.
    """

    config: ExperimentConfig
    seeds: List[int]
    dnn: List[float]
    conversion: List[float]
    snn: List[float]
    failed_seeds: List[Dict] = field(default_factory=list)

    @property
    def status(self) -> str:
        return "partial" if self.failed_seeds else "ok"

    def summary(self) -> Dict[str, Dict[str, float]]:
        out = {}
        for name, values in (
            ("dnn", self.dnn), ("conversion", self.conversion), ("snn", self.snn)
        ):
            arr = np.asarray(values)
            out[name] = {
                "mean": float(arr.mean()),
                "std": float(arr.std()),
                "min": float(arr.min()),
                "max": float(arr.max()),
            }
        return out


def _seed_task(payload: Tuple[ExperimentConfig, int, str, bool]) -> Tuple[float, float, float]:
    """Worker-side pipeline run for one seed."""
    config, seed, strategy, fine_tune = payload
    result = run_pipeline(
        replace(config, seed=int(seed)), strategy=strategy, fine_tune=fine_tune
    )
    return (result.dnn_accuracy, result.conversion_accuracy, result.snn_accuracy)


def seed_sweep(
    config: ExperimentConfig,
    seeds: Sequence[int],
    strategy: str = "proposed",
    fine_tune: bool = True,
    workers: int = 1,
    executor=None,
) -> SeedSweepResult:
    """Run the pipeline once per seed and collect the three accuracies.

    ``workers > 1`` (or an explicit :class:`repro.exec.ParallelExecutor`)
    fans the per-seed pipelines out across worker processes.  Every
    pipeline stage is seeded, so per-seed results are bitwise identical
    to the serial sweep; they are assembled back in seed-list order
    regardless of completion order.  Seeds whose task fails terminally
    are dropped into ``failed_seeds`` rather than aborting the sweep.
    """
    if not seeds:
        raise ValueError("need at least one seed")

    if executor is None and workers > 1:
        from ..exec import ParallelExecutor

        executor = ParallelExecutor(workers=workers)
    if executor is None:
        from ..exec import ambient_executor

        executor = ambient_executor()

    seed_list = [int(s) for s in seeds]
    failed: List[Dict] = []
    if executor is not None and executor.workers > 1 and len(seed_list) > 1:
        payloads = [(config, seed, strategy, fine_tune) for seed in seed_list]
        outcome = executor.map(_seed_task, payloads, label="multiseed")
        triples: List[Optional[Tuple[float, float, float]]] = list(outcome.results)
        failed = [
            {**failure.as_dict(), "seed": seed_list[index]}
            for index, failure in sorted(outcome.failures.items())
        ]
        if all(t is None for t in triples):
            from ..exec import ExecutorError

            raise ExecutorError(
                f"seed sweep lost every seed: {[f['seed'] for f in failed]}"
            )
    else:
        triples = [_seed_task((config, seed, strategy, fine_tune)) for seed in seed_list]

    kept = [seed for seed, t in zip(seed_list, triples) if t is not None]
    values = [t for t in triples if t is not None]
    dnn = [t[0] for t in values]
    conversion = [t[1] for t in values]
    snn = [t[2] for t in values]
    return SeedSweepResult(
        config=config, seeds=kept,
        dnn=dnn, conversion=conversion, snn=snn,
        failed_seeds=failed,
    )


def render_seed_sweep(result: SeedSweepResult) -> str:
    """Per-seed accuracy table plus mean/std/min/max aggregation."""
    from .reporting import format_table

    config = result.config
    rows = [
        [str(seed), f"{d:.2f}", f"{c:.2f}", f"{s:.2f}"]
        for seed, d, c, s in zip(result.seeds, result.dnn, result.conversion, result.snn)
    ]
    summary = result.summary()
    for stat in ("mean", "std", "min", "max"):
        rows.append([
            stat,
            f"{summary['dnn'][stat]:.2f}",
            f"{summary['conversion'][stat]:.2f}",
            f"{summary['snn'][stat]:.2f}",
        ])
    table = format_table(
        ["seed", "DNN %", "converted %", "fine-tuned %"],
        rows,
        title=(
            f"Seed sweep: {config.arch}, {config.dataset}, "
            f"T={config.timesteps} ({len(result.seeds)} seeds)"
        ),
    )
    if result.failed_seeds:
        lines = [
            f"  seed {f['seed']}: {f['kind']} ({f['message']})"
            for f in result.failed_seeds
        ]
        table += "\n\nPARTIAL SWEEP: failed seeds\n" + "\n".join(lines)
    return table


def strategy_win_rate(
    config: ExperimentConfig,
    seeds: Sequence[int],
    strategy_a: str = "proposed",
    strategy_b: str = "threshold_relu",
) -> Dict:
    """Per-seed conversion-accuracy comparison of two strategies.

    Returns the per-seed accuracies and the fraction of seeds where
    ``strategy_a``'s conversion accuracy is at least ``strategy_b``'s.
    """
    if not seeds:
        raise ValueError("need at least one seed")
    a_acc, b_acc = [], []
    for seed in seeds:
        seeded = replace(config, seed=int(seed))
        a = run_pipeline(seeded, strategy=strategy_a, fine_tune=False)
        b = run_pipeline(seeded, strategy=strategy_b, fine_tune=False)
        a_acc.append(a.conversion_accuracy)
        b_acc.append(b.conversion_accuracy)
    wins = sum(1 for a, b in zip(a_acc, b_acc) if a >= b)
    return {
        "seeds": [int(s) for s in seeds],
        strategy_a: a_acc,
        strategy_b: b_acc,
        "win_rate": wins / len(seeds),
    }
