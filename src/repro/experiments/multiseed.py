"""Multi-seed robustness sweeps.

Reduced-scale runs are noisy; a claim like "the alpha/beta conversion
beats the unscaled one at T=2" is only meaningful if it holds across
seeds.  This module repeats the pipeline over a seed list and reports
mean/std/min/max for each accuracy stage, plus the per-seed win/loss
record of the proposed conversion against a baseline strategy.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Sequence

import numpy as np

from .config import ExperimentConfig
from .pipeline import run_pipeline


@dataclass
class SeedSweepResult:
    """Aggregated accuracies over a seed sweep."""

    config: ExperimentConfig
    seeds: List[int]
    dnn: List[float]
    conversion: List[float]
    snn: List[float]

    def summary(self) -> Dict[str, Dict[str, float]]:
        out = {}
        for name, values in (
            ("dnn", self.dnn), ("conversion", self.conversion), ("snn", self.snn)
        ):
            arr = np.asarray(values)
            out[name] = {
                "mean": float(arr.mean()),
                "std": float(arr.std()),
                "min": float(arr.min()),
                "max": float(arr.max()),
            }
        return out


def seed_sweep(
    config: ExperimentConfig,
    seeds: Sequence[int],
    strategy: str = "proposed",
    fine_tune: bool = True,
) -> SeedSweepResult:
    """Run the pipeline once per seed and collect the three accuracies."""
    if not seeds:
        raise ValueError("need at least one seed")
    dnn, conversion, snn = [], [], []
    for seed in seeds:
        result = run_pipeline(
            replace(config, seed=int(seed)), strategy=strategy, fine_tune=fine_tune
        )
        dnn.append(result.dnn_accuracy)
        conversion.append(result.conversion_accuracy)
        snn.append(result.snn_accuracy)
    return SeedSweepResult(
        config=config, seeds=[int(s) for s in seeds],
        dnn=dnn, conversion=conversion, snn=snn,
    )


def strategy_win_rate(
    config: ExperimentConfig,
    seeds: Sequence[int],
    strategy_a: str = "proposed",
    strategy_b: str = "threshold_relu",
) -> Dict:
    """Per-seed conversion-accuracy comparison of two strategies.

    Returns the per-seed accuracies and the fraction of seeds where
    ``strategy_a``'s conversion accuracy is at least ``strategy_b``'s.
    """
    if not seeds:
        raise ValueError("need at least one seed")
    a_acc, b_acc = [], []
    for seed in seeds:
        seeded = replace(config, seed=int(seed))
        a = run_pipeline(seeded, strategy=strategy_a, fine_tune=False)
        b = run_pipeline(seeded, strategy=strategy_b, fine_tune=False)
        a_acc.append(a.conversion_accuracy)
        b_acc.append(b.conversion_accuracy)
    wins = sum(1 for a, b in zip(a_acc, b_acc) if a >= b)
    return {
        "seeds": [int(s) for s in seeds],
        strategy_a: a_acc,
        strategy_b: b_acc,
        "win_rate": wins / len(seeds),
    }
