"""Experiment harness: one driver per paper table/figure.

- :mod:`config` — scale presets (tiny/bench/full) and experiment specs;
- :mod:`context` — cached dataset + trained source DNN;
- :mod:`pipeline` — the hybrid train/convert/fine-tune pipeline;
- :mod:`table1` / :mod:`table2` — the accuracy tables;
- :mod:`fig1` .. :mod:`fig4` — the four figures;
- :mod:`ablation` — the Section IV-B ablations;
- :mod:`reporting` — table rendering and JSON persistence.
"""

from .ablation import (
    render_latency_ablation,
    render_scaling_ablation,
    run_latency_ablation,
    run_scaling_ablation,
)
from .config import SCALES, ExperimentConfig, ScalePreset, get_scale
from .context import ExperimentContext, clear_context_cache, get_context
from .fault_sweep import (
    DEFAULT_LADDERS,
    build_fault_spec,
    render_fault_sweep,
    run_fault_sweep,
)
from .fig1 import render_fig1, run_fig1
from .fig2 import render_fig2, run_fig2
from .fig3 import render_fig3, run_fig3
from .fig4 import render_fig4, run_fig4
from .multiseed import (
    SeedSweepResult,
    render_seed_sweep,
    seed_sweep,
    strategy_win_rate,
)
from .pipeline import (
    PipelineResult,
    clear_pipeline_cache,
    convert_only,
    run_pipeline,
)
from .plotting import ascii_chart, export_csv
from .reporting import format_table, rows_from_dicts, save_results
from .robustness import (
    render_adversarial_robustness,
    render_noise_robustness,
    run_adversarial_robustness,
    run_noise_robustness,
)
from .table1 import PAPER_TABLE1, render_table1, run_table1, run_table1_cell
from .table2 import PAPER_TABLE2, render_table2, run_table2

__all__ = [
    "ExperimentConfig",
    "SeedSweepResult",
    "ascii_chart",
    "export_csv",
    "render_seed_sweep",
    "seed_sweep",
    "strategy_win_rate",
    "ExperimentContext",
    "PAPER_TABLE1",
    "PAPER_TABLE2",
    "PipelineResult",
    "SCALES",
    "ScalePreset",
    "DEFAULT_LADDERS",
    "build_fault_spec",
    "clear_context_cache",
    "clear_pipeline_cache",
    "convert_only",
    "render_fault_sweep",
    "run_fault_sweep",
    "format_table",
    "get_context",
    "get_scale",
    "render_fig1",
    "render_fig2",
    "render_fig3",
    "render_fig4",
    "render_latency_ablation",
    "render_adversarial_robustness",
    "render_noise_robustness",
    "render_scaling_ablation",
    "run_adversarial_robustness",
    "run_noise_robustness",
    "render_table1",
    "render_table2",
    "rows_from_dicts",
    "run_fig1",
    "run_fig2",
    "run_fig3",
    "run_fig4",
    "run_latency_ablation",
    "run_pipeline",
    "run_scaling_ablation",
    "run_table1",
    "run_table1_cell",
    "run_table2",
    "save_results",
]
