"""Fault-tolerance sweep: accuracy vs fault severity, model by model.

For each fault kind in the :mod:`repro.faults` vocabulary this driver
evaluates three models under increasing fault severity:

- the trained source **DNN** (weight faults only — it has no spiking
  neurons or spike traffic to perturb);
- the **converted** SNN, straight out of Algorithm 1;
- the **fine-tuned** SNN after surrogate-gradient learning.

The interesting question for the paper's deployment story is whether
SGL fine-tuning buys back any hardware-fault tolerance on top of the
accuracy it recovers — the sweep renders one degradation curve per
fault kind, with severity level 0 always the clean baseline.

Everything is seeded: the same ``seed`` reproduces the same fault
realisations (per :class:`repro.faults.FaultInjector`'s per-layer RNG
streams), so two identical sweep invocations return identical curves.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..faults import FaultSpec
from ..train import evaluate_dnn, evaluate_snn
from .config import ExperimentConfig, get_scale
from .pipeline import convert_only, run_pipeline
from .reporting import format_table

# Severity ladders per fault kind.  The first level is always the
# clean baseline (null spec).  Quantisation severities are bit widths
# (None = full precision); everything else is a rate/sigma.
DEFAULT_LADDERS: Dict[str, Sequence] = {
    "quantization": (None, 8, 6, 4, 3, 2),
    "prune": (0.0, 0.05, 0.1, 0.2, 0.4),
    "stuck_zero": (0.0, 0.05, 0.1, 0.2, 0.4),
    "sign_flip": (0.0, 0.01, 0.02, 0.05, 0.1),
    "dead_neurons": (0.0, 0.05, 0.1, 0.2, 0.4),
    "threshold_jitter": (0.0, 0.05, 0.1, 0.2, 0.4),
    "leak_drift": (0.0, 0.05, 0.1, 0.2, 0.4),
    "spike_drop": (0.0, 0.02, 0.05, 0.1, 0.2),
    "frame_drop": (0.0, 0.1, 0.2, 0.4),
}

# Fault kinds a plain (non-spiking) DNN can experience.
WEIGHT_KINDS = ("quantization", "prune", "stuck_zero", "sign_flip")

_SPEC_BUILDERS = {
    "quantization": FaultSpec.quantization,
    "prune": FaultSpec.pruning,
    "stuck_zero": FaultSpec.stuck_zero,
    "sign_flip": FaultSpec.sign_flip,
    "dead_neurons": FaultSpec.dead_neurons,
    "threshold_jitter": FaultSpec.threshold_jitter,
    "leak_drift": FaultSpec.leak_drift,
    "spike_drop": FaultSpec.spike_drop,
    "frame_drop": FaultSpec.frame_drop,
}


def build_fault_spec(kind: str, level, seed: int = 0) -> FaultSpec:
    """One-knob :class:`FaultSpec` for ``kind`` at severity ``level``.

    ``level`` of ``None`` (quantisation) or ``0.0`` (rates) yields the
    null spec — the sweep's clean baseline.
    """
    if kind not in _SPEC_BUILDERS:
        raise KeyError(
            f"unknown fault kind '{kind}'; available: {sorted(_SPEC_BUILDERS)}"
        )
    if level is None or level == 0.0:
        return FaultSpec(seed=seed)
    return _SPEC_BUILDERS[kind](level, seed=seed)


def _faulted_accuracy(model, loader_factory, spec: FaultSpec, evaluate) -> float:
    from ..faults import inject_faults

    if spec.is_null:
        return evaluate(model, loader_factory) * 100.0
    with inject_faults(model, spec):
        return evaluate(model, loader_factory) * 100.0


# ---------------------------------------------------------------------
# Parallel sweep plumbing (see repro.exec)
# ---------------------------------------------------------------------
# Worker-process state, populated once per worker by the executor's
# initializer: published model handles, the experiment config, and the
# lazily rebuilt test set.  Models attach as *writable* shared-memory
# copies because fault injection mutates weights in place (restoring
# exact bits afterwards) — one private copy per worker, reused across
# every sweep point that worker evaluates.
_WORKER_STATE: Optional[Dict] = None


def _sweep_worker_init(handles: Dict[str, object], config: ExperimentConfig) -> None:
    global _WORKER_STATE
    _WORKER_STATE = {"handles": handles, "config": config, "models": {}, "data": None}


def _worker_test_loader():
    from ..data import DataLoader, Normalize
    from ..obs.core import suspend_capture
    from .context import _build_dataset

    state = _WORKER_STATE
    if state["data"] is None:
        # The lazy dataset build happens once per worker, inside whatever
        # task got scheduled first — suspend worker-telemetry capture so
        # the canonical per-task stream stays worker-count-independent.
        with suspend_capture():
            dataset = _build_dataset(state["config"])
            mean, std = dataset.channel_stats()
        state["data"] = (dataset, Normalize(mean, std))
    dataset, normalize = state["data"]
    # Same construction as ExperimentContext.test_loader(): fresh
    # deterministic iterable per evaluation.
    return DataLoader(
        dataset.test_images,
        dataset.test_labels,
        batch_size=state["config"].scale.batch_size,
        transform=normalize,
    )


def _sweep_point_task(payload: Tuple[str, str, object, int]) -> float:
    """Evaluate one (model, fault kind, severity) sweep point."""
    from ..exec import attach_model

    model_key, kind, level, seed = payload
    state = _WORKER_STATE
    model = state["models"].get(model_key)
    if model is None:
        model = attach_model(state["handles"][model_key], writable=True)
        state["models"][model_key] = model
    spec = build_fault_spec(kind, level, seed=seed)
    evaluate = evaluate_dnn if model_key == "dnn" else evaluate_snn
    return _faulted_accuracy(model, _worker_test_loader(), spec, evaluate)


def _sweep_points(
    kinds: Sequence[str], ladders: Dict[str, Sequence]
) -> List[Tuple[str, str, object]]:
    """Deterministic task order: (model, kind, level) per sweep cell."""
    points: List[Tuple[str, str, object]] = []
    for kind in kinds:
        for level in ladders[kind]:
            if kind in WEIGHT_KINDS:
                points.append(("dnn", kind, level))
            points.append(("converted", kind, level))
            points.append(("finetuned", kind, level))
    return points


def run_fault_sweep(
    arch: str = "vgg11",
    dataset: str = "cifar10",
    scale_name: str = "bench",
    timesteps: int = 2,
    fault_kinds: Optional[Sequence[str]] = None,
    ladders: Optional[Dict[str, Sequence]] = None,
    seed: int = 0,
    workers: int = 1,
    executor=None,
) -> Dict:
    """Accuracy-vs-fault-severity curves for DNN / converted / fine-tuned.

    Returns ``{"curves": [{"fault", "levels", "dnn", "converted",
    "finetuned"}, ...]}`` with accuracies in percent; ``dnn`` is ``None``
    for fault kinds that only exist in the spiking domain.

    ``workers > 1`` (or an explicit ``executor``) shards the sweep cells
    over a :class:`repro.exec.ParallelExecutor`: models are published
    once over shared memory, every worker rebuilds the deterministic
    test set, and cells are assembled back by task index — so curves
    are bitwise identical to the serial sweep for any worker count.
    Quarantined cells (a genuinely poisonous task) surface as ``None``
    entries with ``status="partial"`` and a ``failures`` list instead
    of losing the whole sweep.  Under an observed run, worker-side
    fault telemetry (events, metrics, spans, per-layer fault records)
    is captured in each worker and merged deterministically into the
    parent's artefacts (see :mod:`repro.obs.remote`); unobserved runs
    keep workers fully quiesced.
    """
    scale = get_scale(scale_name)
    config = ExperimentConfig(
        arch=arch, dataset=dataset, timesteps=timesteps, scale=scale, seed=seed
    )
    result = run_pipeline(config)
    context = result.context
    # run_pipeline fine-tunes its conversion in place, so the "straight
    # after conversion" model needs a fresh (deterministic) conversion.
    converted = convert_only(config, context=context).snn

    kinds = list(fault_kinds) if fault_kinds is not None else list(DEFAULT_LADDERS)
    ladders = {**DEFAULT_LADDERS, **(ladders or {})}

    if executor is None and workers > 1:
        from ..exec import ParallelExecutor

        executor = ParallelExecutor(workers=workers)
    if executor is None:
        from ..exec import ambient_executor

        executor = ambient_executor()
    parallel = executor is not None and executor.workers > 1

    failures: List[Dict] = []
    if parallel:
        from ..exec import ModelStore

        models = {"dnn": context.model, "converted": converted, "finetuned": result.snn}
        points = _sweep_points(kinds, ladders)
        with ModelStore() as store:
            handles = {key: store.publish(model) for key, model in models.items()}
            outcome = executor.map(
                _sweep_point_task,
                [(model_key, kind, level, seed) for model_key, kind, level in points],
                label="fault_sweep",
                initializer=_sweep_worker_init,
                initargs=(handles, config),
            )
        cell_values = dict(zip(points, outcome.results))
        failures = [
            {**failure.as_dict(), "point": list(points[index])}
            for index, failure in sorted(outcome.failures.items())
        ]

        def _cell(model_key: str, kind: str, level) -> Optional[float]:
            return cell_values[(model_key, kind, level)]

    else:

        def _cell(model_key: str, kind: str, level) -> float:
            spec = build_fault_spec(kind, level, seed=seed)
            if model_key == "dnn":
                return _faulted_accuracy(
                    context.model, context.test_loader(), spec, evaluate_dnn
                )
            model = converted if model_key == "converted" else result.snn
            return _faulted_accuracy(model, context.test_loader(), spec, evaluate_snn)

    curves = []
    for kind in kinds:
        levels = list(ladders[kind])
        dnn_curve = [] if kind in WEIGHT_KINDS else None
        converted_curve, finetuned_curve = [], []
        for level in levels:
            if dnn_curve is not None:
                dnn_curve.append(_cell("dnn", kind, level))
            converted_curve.append(_cell("converted", kind, level))
            finetuned_curve.append(_cell("finetuned", kind, level))
        curves.append({
            "fault": kind,
            "levels": levels,
            "dnn": dnn_curve,
            "converted": converted_curve,
            "finetuned": finetuned_curve,
        })

    return {
        "arch": arch,
        "dataset": dataset,
        "timesteps": timesteps,
        "seed": seed,
        "status": "partial" if failures else "ok",
        "failures": failures,
        "curves": curves,
    }


def _format_level(kind: str, level) -> str:
    if kind == "quantization":
        return "fp (none)" if level is None else f"{level} bits"
    return f"{level:g}"


def _format_cell(value: Optional[float]) -> str:
    # ``None`` cells are quarantined sweep points from a partial
    # parallel run (see run_fault_sweep).
    return "-" if value is None else f"{value:.1f}"


def render_fault_sweep(result: Dict) -> str:
    """Markdown-ish tables: one degradation curve per fault kind."""
    timesteps = result["timesteps"]
    blocks = []
    for curve in result["curves"]:
        kind = curve["fault"]
        rows = []
        for i, level in enumerate(curve["levels"]):
            dnn = _format_cell(curve["dnn"][i]) if curve["dnn"] is not None else "-"
            rows.append([
                _format_level(kind, level),
                dnn,
                _format_cell(curve["converted"][i]),
                _format_cell(curve["finetuned"][i]),
            ])
        blocks.append(format_table(
            ["severity", "DNN %", f"converted (T={timesteps}) %",
             f"fine-tuned (T={timesteps}) %"],
            rows,
            title=f"Fault sweep: {kind} ({result['arch']}, {result['dataset']})",
        ))
    if result.get("status") == "partial":
        lines = [
            f"  task {f['index']} {tuple(f['point'])}: {f['kind']} ({f['message']})"
            for f in result.get("failures", [])
        ]
        blocks.append(
            "PARTIAL SWEEP: quarantined/failed points\n" + "\n".join(lines)
        )
    return "\n\n".join(blocks)
