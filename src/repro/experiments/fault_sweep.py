"""Fault-tolerance sweep: accuracy vs fault severity, model by model.

For each fault kind in the :mod:`repro.faults` vocabulary this driver
evaluates three models under increasing fault severity:

- the trained source **DNN** (weight faults only — it has no spiking
  neurons or spike traffic to perturb);
- the **converted** SNN, straight out of Algorithm 1;
- the **fine-tuned** SNN after surrogate-gradient learning.

The interesting question for the paper's deployment story is whether
SGL fine-tuning buys back any hardware-fault tolerance on top of the
accuracy it recovers — the sweep renders one degradation curve per
fault kind, with severity level 0 always the clean baseline.

Everything is seeded: the same ``seed`` reproduces the same fault
realisations (per :class:`repro.faults.FaultInjector`'s per-layer RNG
streams), so two identical sweep invocations return identical curves.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from ..faults import FaultSpec
from ..train import evaluate_dnn, evaluate_snn
from .config import ExperimentConfig, get_scale
from .pipeline import convert_only, run_pipeline
from .reporting import format_table

# Severity ladders per fault kind.  The first level is always the
# clean baseline (null spec).  Quantisation severities are bit widths
# (None = full precision); everything else is a rate/sigma.
DEFAULT_LADDERS: Dict[str, Sequence] = {
    "quantization": (None, 8, 6, 4, 3, 2),
    "prune": (0.0, 0.05, 0.1, 0.2, 0.4),
    "stuck_zero": (0.0, 0.05, 0.1, 0.2, 0.4),
    "sign_flip": (0.0, 0.01, 0.02, 0.05, 0.1),
    "dead_neurons": (0.0, 0.05, 0.1, 0.2, 0.4),
    "threshold_jitter": (0.0, 0.05, 0.1, 0.2, 0.4),
    "leak_drift": (0.0, 0.05, 0.1, 0.2, 0.4),
    "spike_drop": (0.0, 0.02, 0.05, 0.1, 0.2),
    "frame_drop": (0.0, 0.1, 0.2, 0.4),
}

# Fault kinds a plain (non-spiking) DNN can experience.
WEIGHT_KINDS = ("quantization", "prune", "stuck_zero", "sign_flip")

_SPEC_BUILDERS = {
    "quantization": FaultSpec.quantization,
    "prune": FaultSpec.pruning,
    "stuck_zero": FaultSpec.stuck_zero,
    "sign_flip": FaultSpec.sign_flip,
    "dead_neurons": FaultSpec.dead_neurons,
    "threshold_jitter": FaultSpec.threshold_jitter,
    "leak_drift": FaultSpec.leak_drift,
    "spike_drop": FaultSpec.spike_drop,
    "frame_drop": FaultSpec.frame_drop,
}


def build_fault_spec(kind: str, level, seed: int = 0) -> FaultSpec:
    """One-knob :class:`FaultSpec` for ``kind`` at severity ``level``.

    ``level`` of ``None`` (quantisation) or ``0.0`` (rates) yields the
    null spec — the sweep's clean baseline.
    """
    if kind not in _SPEC_BUILDERS:
        raise KeyError(
            f"unknown fault kind '{kind}'; available: {sorted(_SPEC_BUILDERS)}"
        )
    if level is None or level == 0.0:
        return FaultSpec(seed=seed)
    return _SPEC_BUILDERS[kind](level, seed=seed)


def _faulted_accuracy(model, loader_factory, spec: FaultSpec, evaluate) -> float:
    from ..faults import inject_faults

    if spec.is_null:
        return evaluate(model, loader_factory) * 100.0
    with inject_faults(model, spec):
        return evaluate(model, loader_factory) * 100.0


def run_fault_sweep(
    arch: str = "vgg11",
    dataset: str = "cifar10",
    scale_name: str = "bench",
    timesteps: int = 2,
    fault_kinds: Optional[Sequence[str]] = None,
    ladders: Optional[Dict[str, Sequence]] = None,
    seed: int = 0,
) -> Dict:
    """Accuracy-vs-fault-severity curves for DNN / converted / fine-tuned.

    Returns ``{"curves": [{"fault", "levels", "dnn", "converted",
    "finetuned"}, ...]}`` with accuracies in percent; ``dnn`` is ``None``
    for fault kinds that only exist in the spiking domain.
    """
    scale = get_scale(scale_name)
    config = ExperimentConfig(
        arch=arch, dataset=dataset, timesteps=timesteps, scale=scale, seed=seed
    )
    result = run_pipeline(config)
    context = result.context
    # run_pipeline fine-tunes its conversion in place, so the "straight
    # after conversion" model needs a fresh (deterministic) conversion.
    converted = convert_only(config, context=context).snn

    kinds = list(fault_kinds) if fault_kinds is not None else list(DEFAULT_LADDERS)
    ladders = {**DEFAULT_LADDERS, **(ladders or {})}

    curves = []
    for kind in kinds:
        levels = list(ladders[kind])
        dnn_curve = [] if kind in WEIGHT_KINDS else None
        converted_curve, finetuned_curve = [], []
        for level in levels:
            spec = build_fault_spec(kind, level, seed=seed)
            if dnn_curve is not None:
                dnn_curve.append(_faulted_accuracy(
                    context.model, context.test_loader(), spec, evaluate_dnn
                ))
            converted_curve.append(_faulted_accuracy(
                converted, context.test_loader(), spec, evaluate_snn
            ))
            finetuned_curve.append(_faulted_accuracy(
                result.snn, context.test_loader(), spec, evaluate_snn
            ))
        curves.append({
            "fault": kind,
            "levels": levels,
            "dnn": dnn_curve,
            "converted": converted_curve,
            "finetuned": finetuned_curve,
        })

    return {
        "arch": arch,
        "dataset": dataset,
        "timesteps": timesteps,
        "seed": seed,
        "curves": curves,
    }


def _format_level(kind: str, level) -> str:
    if kind == "quantization":
        return "fp (none)" if level is None else f"{level} bits"
    return f"{level:g}"


def render_fault_sweep(result: Dict) -> str:
    """Markdown-ish tables: one degradation curve per fault kind."""
    timesteps = result["timesteps"]
    blocks = []
    for curve in result["curves"]:
        kind = curve["fault"]
        rows = []
        for i, level in enumerate(curve["levels"]):
            dnn = f"{curve['dnn'][i]:.1f}" if curve["dnn"] is not None else "-"
            rows.append([
                _format_level(kind, level),
                dnn,
                f"{curve['converted'][i]:.1f}",
                f"{curve['finetuned'][i]:.1f}",
            ])
        blocks.append(format_table(
            ["severity", "DNN %", f"converted (T={timesteps}) %",
             f"fine-tuned (T={timesteps}) %"],
            rows,
            title=f"Fault sweep: {kind} ({result['arch']}, {result['dataset']})",
        ))
    return "\n\n".join(blocks)
