"""Shared experiment context: dataset + loaders + trained source DNN.

Several tables/figures reuse the same trained DNN (Table I rows at T=2
and T=3, Figs. 2-4 all start from the same VGG-16).  The context caches
the expensive T-independent work — dataset synthesis and DNN training —
keyed by the T-independent part of the experiment config, so the full
benchmark suite trains each source network exactly once per process.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from ..data import (
    Compose,
    DataLoader,
    Normalize,
    RandomCrop,
    RandomHorizontalFlip,
    SyntheticImageDataset,
    synth_cifar10,
    synth_cifar100,
)
from ..models import build_model
from ..nn import Module
from ..train import DNNTrainConfig, DNNTrainer, TrainingHistory, evaluate_dnn
from ..train.lsuv import lsuv_init, scale_residual_branches
from .config import ExperimentConfig

# Per-(architecture, dataset) learning rates for the reduced-scale
# presets: deep BN-free VGG stacks want a gentler LR than the paper's
# 0.01-scaled-up default (gentler still with 100 classes), residual
# nets a hotter one (their Fixup-damped branches mute early gradients).
_ARCH_LR = {
    ("vgg11", "cifar10"): 0.015,
    ("vgg11", "cifar100"): 0.015,
    ("vgg16", "cifar10"): 0.015,
    ("vgg16", "cifar100"): 0.01,
    ("resnet20", "cifar10"): 0.03,
    ("resnet20", "cifar100"): 0.03,
}

_CONTEXT_CACHE: Dict[tuple, "ExperimentContext"] = {}


@dataclass
class ExperimentContext:
    """Everything T-independent for one (arch, dataset, scale, seed)."""

    config: ExperimentConfig
    dataset: SyntheticImageDataset
    model: Module
    dnn_history: TrainingHistory
    dnn_accuracy: float
    normalize: Normalize

    # ------------------------------------------------------------------
    # Loaders (fresh iterables so epochs reshuffle independently)
    # ------------------------------------------------------------------
    def train_loader(self, shuffle: bool = True, seed: int = 1) -> DataLoader:
        transform = _train_transform(self.config, self.normalize)
        return DataLoader(
            self.dataset.train_images,
            self.dataset.train_labels,
            batch_size=self.config.scale.batch_size,
            shuffle=shuffle,
            transform=transform,
            seed=seed,
        )

    def test_loader(self) -> DataLoader:
        return DataLoader(
            self.dataset.test_images,
            self.dataset.test_labels,
            batch_size=self.config.scale.batch_size,
            transform=self.normalize,
        )

    def calibration_loader(self) -> DataLoader:
        return DataLoader(
            self.dataset.train_images,
            self.dataset.train_labels,
            batch_size=self.config.scale.batch_size,
            transform=self.normalize,
        )

    @property
    def input_shape(self) -> Tuple[int, int, int]:
        return self.dataset.input_shape


def _train_transform(config: ExperimentConfig, normalize: Normalize):
    """Normalise, plus crop/flip augmentation when the preset asks."""
    if not config.scale.augment:
        return normalize
    pad = max(1, config.scale.image_size // 8)
    return Compose([RandomCrop(pad), RandomHorizontalFlip(), normalize])


def _build_dataset(config: ExperimentConfig) -> SyntheticImageDataset:
    scale = config.scale
    train_size, test_size = scale.train_size, scale.test_size
    if config.dataset == "cifar10":
        factory = synth_cifar10
    else:
        factory = synth_cifar100
        if scale.name != "full":
            # 100-way discrimination needs more examples per class than
            # the 10-way presets provide; scale the reduced presets up
            # (full scale already uses the real CIFAR-100 sizes).
            train_size *= 4
            test_size *= 2
    return factory(
        image_size=scale.image_size,
        train_size=train_size,
        test_size=test_size,
        seed=config.seed,
    )


def _build_model(config: ExperimentConfig) -> Module:
    scale = config.scale
    kwargs = dict(
        num_classes=config.num_classes,
        width_multiplier=scale.width_multiplier,
        activation=config.activation,
        dropout=scale.dropout,
        rng=np.random.default_rng(config.seed + 100),
    )
    if config.arch.startswith("vgg"):
        kwargs["image_size"] = scale.image_size
    return build_model(config.arch, **kwargs)


def get_context(
    config: ExperimentConfig,
    verbose: bool = False,
    dnn_lr: Optional[float] = None,
) -> ExperimentContext:
    """Build (or fetch from cache) the trained context for ``config``."""
    key = config.context_key()
    if key in _CONTEXT_CACHE:
        return _CONTEXT_CACHE[key]
    if dnn_lr is None:
        dnn_lr = _ARCH_LR.get((config.arch, config.dataset), 0.02)

    dataset = _build_dataset(config)
    mean, std = dataset.channel_stats()
    normalize = Normalize(mean, std)
    model = _build_model(config)

    # Data-driven weight rescaling: deep BN-free stacks (the paper's
    # VGG-16) do not start training otherwise at reduced scale.
    calibration = normalize(
        dataset.train_images[: min(100, len(dataset.train_images))],
        np.random.default_rng(config.seed),
    )
    lsuv_init(model, calibration)
    scale_residual_branches(model)

    train_loader = DataLoader(
        dataset.train_images,
        dataset.train_labels,
        batch_size=config.scale.batch_size,
        shuffle=True,
        transform=_train_transform(config, normalize),
        seed=config.seed + 1,
    )
    test_loader = DataLoader(
        dataset.test_images,
        dataset.test_labels,
        batch_size=config.scale.batch_size,
        transform=normalize,
    )
    trainer = DNNTrainer(DNNTrainConfig(epochs=config.scale.dnn_epochs, lr=dnn_lr))
    history = trainer.fit(model, train_loader, test_loader, verbose=verbose)
    accuracy = evaluate_dnn(model, test_loader)

    context = ExperimentContext(
        config=config,
        dataset=dataset,
        model=model,
        dnn_history=history,
        dnn_accuracy=accuracy,
        normalize=normalize,
    )
    _CONTEXT_CACHE[key] = context
    return context


def clear_context_cache() -> None:
    """Drop all cached contexts (used by tests)."""
    _CONTEXT_CACHE.clear()
