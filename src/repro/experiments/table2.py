"""Table II: comparison with state-of-the-art deep-SNN training methods.

The paper compares its 2-step hybrid-trained VGG-16 against:

- Wu et al. 2019  — surrogate-gradient training from scratch (12 steps);
- Rathi et al. 2020 (DIET-SNN) — hybrid training at 5 steps;
- Kundu et al. 2021 — hybrid training at 10 steps;
- Deng et al. 2021 — optimal conversion (no SGL) at 16 steps.

Each comparator is re-implemented on this substrate:

- "surrogate-scratch": a randomly-initialised SNN trained purely with
  SGL (no conversion) at a larger T;
- "hybrid-T": the same conversion+SGL pipeline at the baseline's T,
  initialised from the Deng-style shift conversion — the strongest
  *prior* conversion rule in this library, standing in for DIET-SNN's
  working threshold-balanced initialisation (those works do not scale
  the threshold/output the way the paper does);
- "deng-conversion": Deng-style optimal-shift conversion, no SGL.

Expected shape: the proposed 2-step model is within a small gap of the
higher-T baselines — the latency win (2.5-8x fewer steps) at nearly the
same accuracy.
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..conversion import ConversionConfig, convert_dnn_to_snn
from ..snn import SpikingNetwork
from ..train import SNNTrainConfig, SNNTrainer, evaluate_snn
from .config import ExperimentConfig, get_scale
from .context import get_context
from .pipeline import convert_only, run_pipeline
from .reporting import format_table

PAPER_TABLE2 = {
    "cifar10": [
        ("Wu et al. 2019", "surrogate gradient", 90.53, 12),
        ("Rathi et al. 2020", "hybrid training", 92.70, 5),
        ("Kundu et al. 2021", "hybrid training", 92.74, 10),
        ("Deng et al. 2021", "DNN-to-SNN conversion", 92.29, 16),
        ("this work", "hybrid training", 91.79, 2),
    ],
    "cifar100": [
        ("Kundu et al. 2021", "hybrid training", 65.34, 10),
        ("Deng et al. 2021", "DNN-to-SNN conversion", 65.94, 16),
        ("this work", "hybrid training", 64.19, 2),
    ],
}


def _train_scratch_snn(config: ExperimentConfig, timesteps: int) -> float:
    """Surrogate-gradient training from scratch at ``timesteps``.

    Builds an *untrained* copy of the architecture, converts it with
    unit thresholds (no calibration value is meaningful for random
    weights) and trains with SGL only — the Wu et al. style baseline.
    """
    from .context import _build_model  # deterministic same-arch builder

    context = get_context(config)
    fresh = _build_model(config)
    conversion = convert_dnn_to_snn(
        fresh,
        context.calibration_loader(),
        ConversionConfig(
            timesteps=timesteps,
            strategy="threshold_relu",
            calibration_batches=config.scale.calibration_batches,
        ),
    )
    trainer = SNNTrainer(
        SNNTrainConfig(epochs=config.scale.snn_epochs, lr=1e-3)
    )
    trainer.fit(
        conversion.snn,
        context.train_loader(seed=config.seed + 3),
        context.test_loader(),
    )
    return evaluate_snn(conversion.snn, context.test_loader())


def run_table2(dataset: str = "cifar10", scale_name: str = "bench", seed: int = 0) -> List[dict]:
    """Reproduce the Table-II comparison for one dataset (VGG-16)."""
    scale = get_scale(scale_name)
    base = ExperimentConfig(
        arch="vgg16", dataset=dataset, timesteps=2, scale=scale, seed=seed
    )
    context = get_context(base)
    rows: List[dict] = []

    # Surrogate-gradient from scratch (Wu et al.) at a larger T.
    scratch_t = 6 if scale.name != "full" else 12
    rows.append(
        {
            "method": "surrogate-scratch (Wu'19 style)",
            "training": "surrogate gradient",
            "timesteps": scratch_t,
            "accuracy": _train_scratch_snn(base, scratch_t) * 100.0,
        }
    )

    # Hybrid training at the DIET-SNN latency (Rathi et al.).
    hybrid_t = 5
    hybrid = run_pipeline(
        base.with_timesteps(hybrid_t), strategy="deng_shift"
    )
    rows.append(
        {
            "method": "hybrid 5-step (Rathi'20 style)",
            "training": "hybrid training",
            "timesteps": hybrid_t,
            "accuracy": hybrid.snn_accuracy * 100.0,
        }
    )

    # Deng et al. optimal conversion, no SGL, at 16 steps.
    deng_t = 16
    deng = convert_only(
        base.with_timesteps(deng_t), strategy="deng_shift", context=context
    )
    rows.append(
        {
            "method": "optimal conversion (Deng'21 style)",
            "training": "DNN-to-SNN conversion",
            "timesteps": deng_t,
            "accuracy": evaluate_snn(deng.snn, context.test_loader()) * 100.0,
        }
    )

    # This work: alpha/beta conversion + SGL at T = 2.
    ours = run_pipeline(base)
    rows.append(
        {
            "method": "this work (alpha/beta + SGL)",
            "training": "hybrid training",
            "timesteps": 2,
            "accuracy": ours.snn_accuracy * 100.0,
        }
    )
    for row in rows:
        row["dataset"] = dataset
        row["dnn_reference"] = context.dnn_accuracy * 100.0
    return rows


def render_table2(rows: List[dict]) -> str:
    headers = ["method", "training type", "T", "accuracy %", "DNN ref %"]
    body = [
        [r["method"], r["training"], r["timesteps"], r["accuracy"], r["dnn_reference"]]
        for r in rows
    ]
    return format_table(headers, body, title="Table II — SOTA comparison (VGG-16)")
