"""Plain-text table rendering and JSON result persistence.

Every benchmark prints the same rows the paper's tables/figures report,
via :func:`format_table`, and optionally archives the numbers with
:func:`save_results` so EXPERIMENTS.md can be refreshed from real runs.
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Optional, Sequence


def _format_cell(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        magnitude = abs(value)
        if magnitude >= 1e5 or magnitude < 1e-3:
            return f"{value:.3e}"
        return f"{value:.4f}".rstrip("0").rstrip(".")
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence],
    title: Optional[str] = None,
) -> str:
    """Render an aligned ASCII table."""
    cells = [[_format_cell(v) for v in row] for row in rows]
    widths = [
        max(len(str(headers[i])), max((len(r[i]) for r in cells), default=0))
        for i in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in cells:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def rows_from_dicts(records: Sequence[Dict], columns: Sequence[str]) -> List[List]:
    """Project a list of dicts onto ordered columns."""
    return [[record.get(col, "") for col in columns] for record in records]


def save_results(name: str, payload: Dict, directory: str = "results") -> str:
    """Persist a result payload as JSON; returns the file path."""
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, f"{name}.json")
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, default=float)
    return path
