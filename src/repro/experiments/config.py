"""Experiment configuration and scale presets.

The paper's experiments run VGG-11/16 and ResNet-20 on CIFAR-10/100 for
hundreds of epochs on a GPU.  This substrate runs on CPU, so every
experiment is parameterised by a :class:`ScalePreset`:

- ``tiny``  — seconds; used by the integration test suite;
- ``bench`` — a few minutes per experiment; the default for the
  benchmark harness (reduced width/epochs, 16x16 synthetic images);
- ``full``  — the paper's geometry (32x32, full width, paper epoch
  counts); provided for completeness, impractically slow on CPU.

All orderings the paper reports (who wins at which T, where the
crossovers fall) are preserved at ``bench`` scale; absolute accuracies
are recorded against the paper's in EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict


@dataclass(frozen=True)
class ScalePreset:
    """Sizing of one experiment run."""

    name: str
    image_size: int
    train_size: int
    test_size: int
    width_multiplier: float
    batch_size: int
    dnn_epochs: int
    snn_epochs: int
    calibration_batches: int
    dropout: float = 0.05
    augment: bool = False  # random crop + horizontal flip (paper IV-A)

    def __post_init__(self) -> None:
        if self.image_size < 4 or self.train_size <= 0 or self.test_size <= 0:
            raise ValueError("invalid scale preset geometry")


SCALES: Dict[str, ScalePreset] = {
    "tiny": ScalePreset(
        name="tiny",
        image_size=16,
        train_size=240,
        test_size=80,
        width_multiplier=0.2,
        batch_size=40,
        dnn_epochs=6,
        snn_epochs=2,
        calibration_batches=2,
    ),
    # Dropout is disabled at bench scale: with tens of images per class
    # it costs more optimization progress than it buys regularisation
    # (the tiny preset keeps it on so the TemporalDropout path stays
    # exercised end-to-end).
    "bench": ScalePreset(
        name="bench",
        image_size=16,
        train_size=500,
        test_size=150,
        width_multiplier=0.25,
        batch_size=50,
        dnn_epochs=18,
        snn_epochs=4,
        calibration_batches=4,
        dropout=0.0,
    ),
    "full": ScalePreset(
        name="full",
        image_size=32,
        train_size=50_000,
        test_size=10_000,
        width_multiplier=1.0,
        batch_size=64,
        dnn_epochs=300,
        snn_epochs=200,
        calibration_batches=16,
        dropout=0.2,
        augment=True,
    ),
}


@dataclass(frozen=True)
class ExperimentConfig:
    """One (architecture, dataset, latency) experiment."""

    arch: str  # "vgg11" | "vgg16" | "resnet20"
    dataset: str  # "cifar10" | "cifar100"
    timesteps: int = 2
    scale: ScalePreset = field(default_factory=lambda: SCALES["bench"])
    seed: int = 0
    activation: str = "threshold_relu"

    def __post_init__(self) -> None:
        if self.dataset not in ("cifar10", "cifar100"):
            raise ValueError(f"unknown dataset '{self.dataset}'")
        if self.timesteps <= 0:
            raise ValueError("timesteps must be positive")

    @property
    def num_classes(self) -> int:
        return 10 if self.dataset == "cifar10" else 100

    def with_timesteps(self, timesteps: int) -> "ExperimentConfig":
        return replace(self, timesteps=timesteps)

    def context_key(self) -> tuple:
        """Cache key for everything T-independent (data + trained DNN)."""
        return (
            self.arch,
            self.dataset,
            self.scale.name,
            self.scale.image_size,
            self.scale.train_size,
            self.scale.width_multiplier,
            self.scale.dnn_epochs,
            self.seed,
            self.activation,
        )


def get_scale(name: str) -> ScalePreset:
    if name not in SCALES:
        raise KeyError(f"unknown scale '{name}'; available: {sorted(SCALES)}")
    return SCALES[name]
