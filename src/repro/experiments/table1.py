"""Table I: model performance after (a) DNN training, (b) DNN-to-SNN
conversion, (c) SNN (SGL) training — for every (architecture, dataset)
pair the paper reports, at T = 2 and 3.

Paper reference values (full scale):

    CIFAR-10  VGG-11    T=2: 90.76 / 65.82 / 89.39
              VGG-11    T=3: 91.10 / 78.76 / 89.79
              VGG-16    T=2: 93.26 / 69.58 / 91.79
              VGG-16    T=3: 93.26 / 85.06 / 91.93
              ResNet-20 T=2: 93.07 / 61.96 / 90.00
              ResNet-20 T=3: 93.07 / 73.57 / 90.06
    CIFAR-100 VGG-16    T=2: 68.45 / 19.57 / 64.19
              VGG-16    T=3: 68.45 / 36.84 / 63.92
              ResNet-20 T=2: 63.88 / 19.85 / 57.81
              ResNet-20 T=3: 63.88 / 31.43 / 59.29

Expected shape at reduced scale: conversion accuracy (b) is far below
(a); SGL (c) recovers most of the gap; the T=3 conversion beats T=2.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from .config import ExperimentConfig, ScalePreset, get_scale
from .pipeline import run_pipeline
from .reporting import format_table

# The (architecture, dataset) grid of Table I.
TABLE1_GRID: List[Tuple[str, str]] = [
    ("vgg11", "cifar10"),
    ("vgg16", "cifar10"),
    ("resnet20", "cifar10"),
    ("vgg16", "cifar100"),
    ("resnet20", "cifar100"),
]

PAPER_TABLE1: Dict[Tuple[str, str, int], Tuple[float, float, float]] = {
    ("vgg11", "cifar10", 2): (90.76, 65.82, 89.39),
    ("vgg11", "cifar10", 3): (91.10, 78.76, 89.79),
    ("vgg16", "cifar10", 2): (93.26, 69.58, 91.79),
    ("vgg16", "cifar10", 3): (93.26, 85.06, 91.93),
    ("resnet20", "cifar10", 2): (93.07, 61.96, 90.00),
    ("resnet20", "cifar10", 3): (93.07, 73.57, 90.06),
    ("vgg16", "cifar100", 2): (68.45, 19.57, 64.19),
    ("vgg16", "cifar100", 3): (68.45, 36.84, 63.92),
    ("resnet20", "cifar100", 2): (63.88, 19.85, 57.81),
    ("resnet20", "cifar100", 3): (63.88, 31.43, 59.29),
}


def run_table1_cell(
    arch: str,
    dataset: str,
    timesteps: int,
    scale: ScalePreset,
    seed: int = 0,
) -> dict:
    """One Table-I row: accuracies (a), (b), (c) for an (arch, dataset, T)."""
    config = ExperimentConfig(
        arch=arch, dataset=dataset, timesteps=timesteps, scale=scale, seed=seed
    )
    result = run_pipeline(config)
    paper = PAPER_TABLE1.get((arch, dataset, timesteps))
    return {
        "architecture": arch,
        "dataset": dataset,
        "timesteps": timesteps,
        "dnn_accuracy": result.dnn_accuracy * 100.0,
        "conversion_accuracy": result.conversion_accuracy * 100.0,
        "snn_accuracy": result.snn_accuracy * 100.0,
        "paper_dnn": paper[0] if paper else None,
        "paper_conversion": paper[1] if paper else None,
        "paper_snn": paper[2] if paper else None,
    }


def run_table1(
    scale_name: str = "bench",
    grid: List[Tuple[str, str]] = None,
    timesteps: Tuple[int, ...] = (2, 3),
) -> List[dict]:
    """All Table-I rows (optionally on a sub-grid)."""
    scale = get_scale(scale_name)
    rows = []
    for arch, dataset in grid if grid is not None else TABLE1_GRID:
        for t in timesteps:
            rows.append(run_table1_cell(arch, dataset, t, scale))
    return rows


def render_table1(rows: List[dict]) -> str:
    headers = [
        "arch", "dataset", "T",
        "DNN %", "conv %", "SNN %",
        "paper DNN", "paper conv", "paper SNN",
    ]
    body = [
        [
            r["architecture"], r["dataset"], r["timesteps"],
            r["dnn_accuracy"], r["conversion_accuracy"], r["snn_accuracy"],
            r["paper_dnn"], r["paper_conversion"], r["paper_snn"],
        ]
        for r in rows
    ]
    return format_table(headers, body, title="Table I — DNN / conversion / SNN accuracy")
