"""Ablation study (end of Section IV-B).

Two claims are ablated:

1. Replacing the proposed alpha/beta scaling with the prior
   threshold-scaling heuristics ([16], [24] — a linear grid search over
   the threshold, no output scaling) and then applying SGL collapses
   accuracy at T in {2, 3} (paper: ~10% on CIFAR-10, ~1% on CIFAR-100,
   i.e. chance level).
2. Conversion alone (no SGL): the proposed scaling needs ~12 steps to
   approach the DNN's accuracy, while the SOTA conversion [15] needs
   ~16 — the proposed scheme dominates the whole latency axis.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from ..train import evaluate_snn
from .config import ExperimentConfig, get_scale
from .context import get_context
from .pipeline import convert_only, run_pipeline
from .reporting import format_table


def run_scaling_ablation(
    dataset: str = "cifar10",
    scale_name: str = "bench",
    timesteps: Sequence[int] = (2, 3),
    seed: int = 0,
) -> List[dict]:
    """Claim 1: grid threshold-scaling + SGL vs alpha/beta + SGL."""
    scale = get_scale(scale_name)
    base = ExperimentConfig(
        arch="vgg16", dataset=dataset, timesteps=2, scale=scale, seed=seed
    )
    rows = []
    for t in timesteps:
        config = base.with_timesteps(t)
        ours = run_pipeline(config, strategy="proposed")
        heuristic = run_pipeline(config, strategy="grid_scaling")
        rows.append(
            {
                "dataset": dataset,
                "timesteps": t,
                "proposed_sgl_accuracy": ours.snn_accuracy * 100.0,
                "grid_scaling_sgl_accuracy": heuristic.snn_accuracy * 100.0,
                "proposed_conversion_accuracy": ours.conversion_accuracy * 100.0,
                "grid_scaling_conversion_accuracy": heuristic.conversion_accuracy
                * 100.0,
                "dnn_accuracy": ours.dnn_accuracy * 100.0,
            }
        )
    return rows


def run_latency_ablation(
    dataset: str = "cifar10",
    scale_name: str = "bench",
    timesteps: Sequence[int] = (2, 3, 4, 5, 8, 12, 16),
    tolerance: float = 0.05,
    seed: int = 0,
) -> Dict:
    """Claim 2: minimum conversion-only T to approach DNN accuracy.

    ``tolerance`` is the acceptable accuracy gap (fraction of 1) to the
    source DNN.  Returns the sweep plus the first-T-to-converge for the
    proposed scaling and the Deng-style conversion.
    """
    scale = get_scale(scale_name)
    base = ExperimentConfig(
        arch="vgg16", dataset=dataset, timesteps=2, scale=scale, seed=seed
    )
    context = get_context(base)
    test_loader = context.test_loader()
    target = context.dnn_accuracy - tolerance

    sweep: Dict[str, List[float]] = {"proposed": [], "deng_shift": []}
    for t in timesteps:
        config = base.with_timesteps(t)
        for strategy in sweep:
            conversion = convert_only(config, strategy=strategy, context=context)
            sweep[strategy].append(evaluate_snn(conversion.snn, test_loader))

    def first_converged(series: List[float]) -> int:
        for t, accuracy in zip(timesteps, series):
            if accuracy >= target:
                return t
        return -1  # never converged within the sweep

    return {
        "dataset": dataset,
        "timesteps": list(timesteps),
        "sweep": {k: [v * 100.0 for v in series] for k, series in sweep.items()},
        "dnn_accuracy": context.dnn_accuracy * 100.0,
        "target_accuracy": target * 100.0,
        "first_t_proposed": first_converged(sweep["proposed"]),
        "first_t_deng": first_converged(sweep["deng_shift"]),
    }


def render_scaling_ablation(rows: List[dict]) -> str:
    headers = [
        "T",
        "ours+SGL %",
        "grid-scale+SGL %",
        "ours conv %",
        "grid-scale conv %",
        "DNN %",
    ]
    body = [
        [
            r["timesteps"],
            r["proposed_sgl_accuracy"],
            r["grid_scaling_sgl_accuracy"],
            r["proposed_conversion_accuracy"],
            r["grid_scaling_conversion_accuracy"],
            r["dnn_accuracy"],
        ]
        for r in rows
    ]
    return format_table(headers, body, title="Ablation — scaling rule vs SGL outcome")


def render_latency_ablation(result: Dict) -> str:
    headers = ["T", "proposed conv %", "deng conv %"]
    body = [
        [t, p, d]
        for t, p, d in zip(
            result["timesteps"], result["sweep"]["proposed"], result["sweep"]["deng_shift"]
        )
    ]
    table = format_table(
        headers, body, title=f"Ablation — conversion-only latency ({result['dataset']})"
    )
    return (
        table
        + f"\nDNN = {result['dnn_accuracy']:.2f}%, target = {result['target_accuracy']:.2f}%"
        + f"\nfirst T to converge: proposed = {result['first_t_proposed']}, "
        + f"deng = {result['first_t_deng']}"
    )
