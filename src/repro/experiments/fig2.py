"""Fig. 2: conversion-only accuracy vs number of SNN time steps.

The paper's Fig. 2 sweeps T for DNN-to-SNN conversion (no SGL) on
CIFAR-10 with VGG and ResNet architectures under two threshold rules:
the trainable threshold-ReLU (``V^th = mu``) and the max-pre-activation
threshold of Deng et al. [15] (``V^th = d_max``).

Expected shape: accuracy collapses as T drops below ~5 for both rules,
with the max-pre-activation rule strictly worse at every small T
(because ``d_max`` is an outlier far above where the distribution's
mass lives).  The proposed alpha/beta scaling is also swept for
context — it degrades far more gracefully.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from ..train import evaluate_snn
from .config import ExperimentConfig, get_scale
from .context import get_context
from .pipeline import convert_only
from .plotting import ascii_chart
from .reporting import format_table

DEFAULT_TIMESTEPS: Tuple[int, ...] = (1, 2, 3, 4, 5, 8, 12, 16)
DEFAULT_STRATEGIES: Tuple[str, ...] = ("threshold_relu", "max_activation", "proposed")


def run_fig2(
    arch: str = "vgg16",
    dataset: str = "cifar10",
    scale_name: str = "bench",
    timesteps: Sequence[int] = DEFAULT_TIMESTEPS,
    strategies: Sequence[str] = DEFAULT_STRATEGIES,
    seed: int = 0,
) -> Dict:
    """Accuracy-vs-T sweep for each conversion strategy."""
    scale = get_scale(scale_name)
    base = ExperimentConfig(
        arch=arch, dataset=dataset, timesteps=2, scale=scale, seed=seed
    )
    context = get_context(base)
    test_loader = context.test_loader()

    series: Dict[str, List[float]] = {s: [] for s in strategies}
    for t in timesteps:
        config = base.with_timesteps(t)
        for strategy in strategies:
            conversion = convert_only(config, strategy=strategy, context=context)
            accuracy = evaluate_snn(conversion.snn, test_loader)
            series[strategy].append(accuracy * 100.0)
    return {
        "arch": arch,
        "dataset": dataset,
        "timesteps": list(timesteps),
        "series": series,
        "dnn_accuracy": context.dnn_accuracy * 100.0,
    }


def render_fig2(result: Dict) -> str:
    headers = ["T"] + list(result["series"].keys()) + ["DNN ref"]
    rows = []
    for index, t in enumerate(result["timesteps"]):
        row = [t]
        for strategy in result["series"]:
            row.append(result["series"][strategy][index])
        row.append(result["dnn_accuracy"])
        rows.append(row)
    table = format_table(
        headers,
        rows,
        title=(
            f"Fig. 2 — conversion-only accuracy vs T "
            f"({result['arch']}, {result['dataset']})"
        ),
    )
    chart = ascii_chart(
        result["timesteps"],
        dict(result["series"]),
        title="accuracy (%) vs T",
        y_label="acc%",
    )
    return table + "\n\n" + chart
