"""Terminal plotting and CSV export for figure data.

The environment has no plotting stack, so figures are rendered two
ways: an ASCII chart for immediate inspection (used by the benchmark
output) and a CSV dump (``results/*.csv``) that any external tool can
plot to reproduce the paper's figures exactly.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Sequence

import numpy as np

_GLYPHS = "ox+*#@%&"


def ascii_chart(
    x: Sequence[float],
    series: Dict[str, Sequence[float]],
    width: int = 64,
    height: int = 16,
    title: Optional[str] = None,
    y_label: str = "",
) -> str:
    """Render one or more line series as an ASCII scatter chart.

    Each series gets a distinct glyph; x positions are mapped linearly.
    Collisions (two series on the same cell) show the later glyph.
    """
    x = np.asarray(list(x), dtype=np.float64)
    if x.size == 0 or not series:
        raise ValueError("nothing to plot")
    all_y = np.concatenate([np.asarray(list(v), dtype=np.float64) for v in series.values()])
    y_min, y_max = float(all_y.min()), float(all_y.max())
    if y_max == y_min:
        y_max = y_min + 1.0
    x_min, x_max = float(x.min()), float(x.max())
    if x_max == x_min:
        x_max = x_min + 1.0

    grid = [[" "] * width for _ in range(height)]
    for index, (name, values) in enumerate(series.items()):
        glyph = _GLYPHS[index % len(_GLYPHS)]
        for xv, yv in zip(x, values):
            col = int(round((xv - x_min) / (x_max - x_min) * (width - 1)))
            row = int(round((yv - y_min) / (y_max - y_min) * (height - 1)))
            grid[height - 1 - row][col] = glyph

    lines = []
    if title:
        lines.append(title)
    top_label = f"{y_max:.4g}"
    bottom_label = f"{y_min:.4g}"
    pad = max(len(top_label), len(bottom_label), len(y_label))
    for row_index, row in enumerate(grid):
        if row_index == 0:
            label = top_label
        elif row_index == height - 1:
            label = bottom_label
        elif row_index == height // 2 and y_label:
            label = y_label
        else:
            label = ""
        lines.append(f"{label:>{pad}} |" + "".join(row))
    lines.append(" " * pad + " +" + "-" * width)
    lines.append(
        " " * pad + f"  {x_min:<.4g}" + " " * max(1, width - 12) + f"{x_max:>.4g}"
    )
    legend = "   ".join(
        f"{_GLYPHS[i % len(_GLYPHS)]} = {name}" for i, name in enumerate(series)
    )
    lines.append(" " * pad + "  " + legend)
    return "\n".join(lines)


def export_csv(
    name: str,
    columns: Dict[str, Sequence],
    directory: str = "results",
) -> str:
    """Write aligned columns to ``results/<name>.csv``; returns the path."""
    if not columns:
        raise ValueError("no columns to export")
    lengths = {len(list(v)) for v in columns.values()}
    if len(lengths) != 1:
        raise ValueError(f"column lengths differ: {sorted(lengths)}")
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, f"{name}.csv")
    keys = list(columns)
    rows = zip(*[list(columns[k]) for k in keys])
    with open(path, "w") as handle:
        handle.write(",".join(keys) + "\n")
        for row in rows:
            handle.write(",".join(str(v) for v in row) + "\n")
    return path
