"""Temporal spike analysis: rasters, intervals, synchrony.

Tools for inspecting *when* a converted network spikes, not just how
much.  Ultra-low-latency SNNs (T = 2-3) leave little room for temporal
structure, which is precisely the paper's bet — most of the information
must move in the first step or two.  These utilities let tests and
examples quantify that:

- :func:`record_spike_raster` — per-layer ``(T, batch, ...)`` binary
  spike tensors for a given input batch;
- :func:`spikes_per_step` — population spike counts over time;
- :func:`first_spike_latency` — per-neuron step of first firing;
- :func:`temporal_sparsity` — fraction of silent neuron-steps;
- :func:`synchrony_index` — how concentrated in a single step the
  layer's spiking is (1 = all spikes in one step).
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from ..tensor import no_grad
from .network import SpikingNetwork


def record_spike_raster(
    snn: SpikingNetwork, images: np.ndarray
) -> List[np.ndarray]:
    """Binary spike rasters of every neuron layer for one batch.

    Returns one array per spiking layer, shaped ``(T, batch, ...)``
    with entries in {0, 1} (amplitudes are normalised away).
    """
    neurons = snn.spiking_neurons()
    frames: List[List[np.ndarray]] = [[] for _ in neurons]
    patched = []
    for index, neuron in enumerate(neurons):
        original = neuron.forward

        def recording(current, _orig=original, _index=index):
            out = _orig(current)
            frames[_index].append((out.data != 0.0).astype(np.float64))
            return out

        object.__setattr__(neuron, "forward", recording)
        patched.append((neuron, original))
    was_training = snn.training
    snn.eval()
    try:
        with no_grad():
            snn(np.asarray(images))
    finally:
        snn.train(was_training)
        for neuron, original in patched:
            object.__setattr__(neuron, "forward", original)
    rasters = []
    for layer_frames in frames:
        if not layer_frames:
            raise RuntimeError("a spiking layer produced no frames")
        rasters.append(np.stack(layer_frames, axis=0))
    return rasters


def spikes_per_step(raster: np.ndarray) -> np.ndarray:
    """Total population spikes at each time step: shape ``(T,)``."""
    t = raster.shape[0]
    return raster.reshape(t, -1).sum(axis=1)


def first_spike_latency(raster: np.ndarray) -> np.ndarray:
    """Per-neuron first-firing step (T for neurons that never fire).

    Shape: the raster's per-step shape (batch and neuron dims kept).
    """
    t = raster.shape[0]
    fired_any = raster.any(axis=0)
    first = np.argmax(raster != 0.0, axis=0)
    return np.where(fired_any, first, t)


def temporal_sparsity(raster: np.ndarray) -> float:
    """Fraction of (neuron, step) slots with no spike — the quantity
    AC-based energy savings come from."""
    return float(1.0 - raster.mean())


def synchrony_index(raster: np.ndarray) -> float:
    """Concentration of spiking in time.

    1 means every spike lands in a single step; ``1/T`` means perfectly
    uniform spread.  Defined as ``max_t s_t / sum_t s_t`` over the
    population counts ``s_t`` (0 for a silent raster).
    """
    counts = spikes_per_step(raster)
    total = counts.sum()
    if total == 0:
        return 0.0
    return float(counts.max() / total)


def layer_summary(
    snn: SpikingNetwork, images: np.ndarray
) -> List[Dict[str, float]]:
    """Per-layer temporal statistics for one batch."""
    rasters = record_spike_raster(snn, images)
    summary = []
    for index, raster in enumerate(rasters):
        latencies = first_spike_latency(raster)
        fired = latencies < raster.shape[0]
        summary.append(
            {
                "layer": index,
                "spikes_per_neuron": float(
                    raster.sum() / max(1, np.prod(raster.shape[1:]))
                ),
                "temporal_sparsity": temporal_sparsity(raster),
                "synchrony": synchrony_index(raster),
                "mean_first_spike": (
                    float(latencies[fired].mean()) if fired.any() else float("nan")
                ),
                "fraction_firing": float(fired.mean()),
            }
        )
    return summary
