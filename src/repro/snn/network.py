"""Temporal execution of converted spiking networks.

The spiking network is a *twin* of the source DNN: every weight layer
(conv/linear/pool/flatten) is applied once per time step, and every
DNN activation is replaced by a stateful :class:`SpikingNeuron`.  The
network presents the (direct-encoded) input for ``timesteps`` steps and
accumulates the final linear layer's outputs — the output layer does
not spike, following standard practice for low-latency SNNs (the class
decision is the accumulated logit).

Structure classes:

- :class:`StepWrapper` — applies a stateless DNN module each step;
- :class:`TemporalDropout` — dropout with a mask held fixed across the
  time steps of one forward pass (as in DIET-SNN's SNN-domain training);
- :class:`SpikingSequential` — ordered chain of spiking modules;
- :class:`SpikingResidualBlock` — spiking twin of a ResNet basic block
  (branch and shortcut currents sum before the output neuron);
- :class:`SpikingNetwork` — encoder + body + temporal loop.
"""

from __future__ import annotations

from typing import Iterator, List, Optional

import numpy as np

from ..nn.module import Module
from ..tensor import Tensor
from .encoding import DirectEncoder, Encoder
from .neurons import SpikingNeuron


class SpikingModule(Module):
    """Base class: one ``forward`` call advances one time step."""

    def reset_state(self) -> None:
        """Clear temporal state (membranes, dropout masks) recursively."""
        for child in self.children():
            if isinstance(child, (SpikingModule, SpikingNeuron)):
                child.reset_state()


class StepWrapper(SpikingModule):
    """Applies a stateless DNN module (conv / linear / pool / flatten)
    at every time step, sharing its weights across steps."""

    def __init__(self, inner: Module) -> None:
        super().__init__()
        self.inner = inner

    def forward(self, x: Tensor) -> Tensor:
        return self.inner(x)

    def extra_repr(self) -> str:
        return type(self.inner).__name__


class TemporalDropout(SpikingModule):
    """Dropout whose mask is sampled once per input and shared by all
    time steps, so the set of silenced units is consistent through the
    temporal unroll."""

    def __init__(self, p: float, rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError(f"dropout probability must be in [0, 1), got {p}")
        self.p = p
        self.rng = rng if rng is not None else np.random.default_rng()
        self._mask: Optional[np.ndarray] = None

    def reset_state(self) -> None:
        self._mask = None
        super().reset_state()

    def forward(self, x: Tensor) -> Tensor:
        if not self.training or self.p == 0.0:
            return x
        if self._mask is None or self._mask.shape != x.data.shape:
            keep = (self.rng.random(x.data.shape) >= self.p).astype(x.data.dtype)
            self._mask = keep / (1.0 - self.p)
        mask = self._mask

        def bwd(g):
            return (g * mask,)

        return Tensor.from_op(x.data * mask, (x,), bwd, "temporal_dropout")

    def extra_repr(self) -> str:
        return f"p={self.p}"


class SpikingSequential(SpikingModule):
    """Ordered chain of spiking modules (one time step per call)."""

    def __init__(self, *layers: Module) -> None:
        super().__init__()
        self._layer_list: List[Module] = []
        for layer in layers:
            self.append(layer)

    def append(self, layer: Module) -> "SpikingSequential":
        index = len(self._layer_list)
        self._layer_list.append(layer)
        self.add_module(str(index), layer)
        return self

    def forward(self, x: Tensor) -> Tensor:
        for layer in self._layer_list:
            x = layer(x)
        return x

    def __iter__(self) -> Iterator[Module]:
        return iter(self._layer_list)

    def __getitem__(self, index) -> Module:
        return self._layer_list[index]

    def __len__(self) -> int:
        return len(self._layer_list)


class SpikingResidualBlock(SpikingModule):
    """Spiking twin of :class:`repro.models.resnet.BasicBlock`.

    The main-branch current (conv2 of the spikes of neuron1) and the
    shortcut current sum at the membrane of the output neuron, the
    standard treatment of skip connections in converted spiking ResNets.
    """

    def __init__(
        self,
        conv1: Module,
        neuron1: SpikingNeuron,
        conv2: Module,
        shortcut: Module,
        neuron2: SpikingNeuron,
    ) -> None:
        super().__init__()
        self.conv1 = conv1
        self.neuron1 = neuron1
        self.conv2 = conv2
        self.shortcut = shortcut
        self.neuron2 = neuron2

    def forward(self, x: Tensor) -> Tensor:
        branch = self.conv2(self.neuron1(self.conv1(x)))
        return self.neuron2(branch + self.shortcut(x))


class SpikingNetwork(SpikingModule):
    """A converted SNN: encoder, spiking body, and the temporal loop.

    Parameters
    ----------
    body:
        Spiking pipeline mapping one input frame to one output-logit
        contribution (its last stage is the non-spiking output layer).
    timesteps:
        Number of time steps ``T`` (the paper's ultra-low-latency regime
        is T in {2, 3}).
    encoder:
        Input encoder; defaults to direct encoding.

    ``forward`` accepts a numpy batch or Tensor and returns the
    time-averaged logits; differentiable end-to-end through the unroll
    (BPTT) for SGL fine-tuning.
    """

    OUTPUT_MODES = ("mean", "max", "last")

    def __init__(
        self,
        body: SpikingModule,
        timesteps: int,
        encoder: Optional[Encoder] = None,
        output_mode: str = "mean",
    ) -> None:
        super().__init__()
        if timesteps <= 0:
            raise ValueError("timesteps must be positive")
        if output_mode not in self.OUTPUT_MODES:
            raise ValueError(
                f"output_mode must be one of {self.OUTPUT_MODES}, got "
                f"'{output_mode}'"
            )
        self.body = body
        self.timesteps = timesteps
        self.encoder = encoder if encoder is not None else DirectEncoder()
        # Output decoding: "mean" accumulates the output layer over all
        # steps (the paper's choice); "max" takes the elementwise max
        # over steps; "last" reads only the final step.
        self.output_mode = output_mode
        # Per-timestep observer (repro.obs.instruments.StepMonitor);
        # None keeps the temporal loop on its fast path.
        self._step_monitor = None

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    def attach_monitor(self, monitor) -> None:
        """Install an object whose ``on_step(step, network)`` is called
        after every simulated time step (see ``repro.obs.monitored``)."""
        self._step_monitor = monitor

    def detach_monitor(self) -> None:
        self._step_monitor = None

    def forward(self, images) -> Tensor:
        self.reset_state()
        if (
            isinstance(images, Tensor)
            and images.requires_grad
            and isinstance(self.encoder, DirectEncoder)
        ):
            # Keep the input in the autograd graph (direct encoding
            # presents the same tensor every step), so gradients w.r.t.
            # the input are available — used by FGSM robustness probes.
            frames = [images] * self.timesteps
        else:
            data = images.data if isinstance(images, Tensor) else np.asarray(images)
            frames = [Tensor(f) for f in self.encoder(data, self.timesteps)]
        from ..tensor import maximum

        total: Optional[Tensor] = None
        for step, frame in enumerate(frames):
            out = self.body(frame)
            if self._step_monitor is not None:
                self._step_monitor.on_step(step, self)
            if self.output_mode == "mean":
                total = out if total is None else total + out
            elif self.output_mode == "max":
                total = out if total is None else maximum(total, out)
            else:  # "last"
                total = out
        if self.output_mode == "mean":
            return total * (1.0 / self.timesteps)
        return total

    # ------------------------------------------------------------------
    # Spiking statistics
    # ------------------------------------------------------------------
    def spiking_neurons(self) -> List[SpikingNeuron]:
        return [m for m in self.modules() if isinstance(m, SpikingNeuron)]

    def set_recording(self, enabled: bool) -> None:
        for neuron in self.spiking_neurons():
            neuron.recording = enabled

    def reset_spike_stats(self) -> None:
        for neuron in self.spiking_neurons():
            neuron.reset_spike_stats()

    def total_spikes(self) -> float:
        return sum(neuron.spike_count for neuron in self.spiking_neurons())

    def extra_repr(self) -> str:
        return f"timesteps={self.timesteps}, encoder={type(self.encoder).__name__}"
