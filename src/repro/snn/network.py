"""Temporal execution of converted spiking networks.

The spiking network is a *twin* of the source DNN: every weight layer
(conv/linear/pool/flatten) is applied once per time step, and every
DNN activation is replaced by a stateful :class:`SpikingNeuron`.  The
network presents the (direct-encoded) input for ``timesteps`` steps and
accumulates the final linear layer's outputs — the output layer does
not spike, following standard practice for low-latency SNNs (the class
decision is the accumulated logit).

Two execution modes compute the identical unroll:

- ``"stepwise"`` — the classic step-major loop: T outer steps, each
  pushing one frame through every layer.  Every per-step probe (monitor
  hooks, instance-patched forwards) sees the network exactly as the
  temporal semantics describe it.
- ``"fused"`` (default) — layer-major, time-folded execution: the T
  input frames are packed along the batch axis (``(T*N, C, H, W)``,
  time-major blocks) so each stateless layer runs **one** GEMM over the
  folded batch instead of T small ones, and each stateful module
  (:class:`SpikingNeuron`, :class:`~repro.snn.pooling.SpikingMaxPool`,
  :class:`TemporalDropout`) consumes the folded tensor with a vectorised
  scan over the time blocks.  Valid because the body is feed-forward:
  reordering (step, layer) loops preserves every data dependency.  The
  fused path produces the same spikes, logits and BPTT gradients as the
  step-major loop (see ``tests/test_fused_equivalence.py``).

Fused execution degrades gracefully instead of changing semantics:
a network-level step monitor forces the whole forward back to
stepwise, and any module whose ``forward`` has been instance-patched
(the library's probing idiom — event counting, spike rasters,
calibration taps, spike-rate regularizers) is executed per step on the
unfolded frames while the rest of the body stays fused.

Structure classes:

- :class:`StepWrapper` — applies a stateless DNN module each step;
- :class:`TemporalDropout` — dropout with a mask held fixed across the
  time steps of one forward pass (as in DIET-SNN's SNN-domain training);
- :class:`SpikingSequential` — ordered chain of spiking modules;
- :class:`SpikingResidualBlock` — spiking twin of a ResNet basic block
  (branch and shortcut currents sum before the output neuron);
- :class:`SpikingNetwork` — encoder + body + temporal loop.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, List, Optional, Tuple

import numpy as np

from ..nn.batchnorm import BatchNorm2d
from ..nn.containers import Flatten, Identity
from ..nn.conv import Conv2d
from ..nn.linear import Linear
from ..nn.pooling import AvgPool2d, GlobalAvgPool2d, MaxPool2d
from ..nn.module import Module
from ..tensor import GradMode, Tensor, concatenate
from .dispatch import SparseDispatch, active_dispatch, dispatch_context
from .encoding import DirectEncoder, Encoder
from .neurons import SpikingNeuron


# ----------------------------------------------------------------------
# Layer-attribution probe (repro.obs.profile)
# ----------------------------------------------------------------------
#: Installed by the op profiler so temporal loops can label which layer
#: each primitive op belongs to.  A plain module global rather than an
#: import: repro.obs imports repro.snn, so this module must never import
#: the observability stack at top level.  The probe is a
#: ``callable(label) -> context manager``; ``None`` keeps every loop on
#: its fast path.
_LAYER_PROBE = None


def set_layer_probe(probe) -> None:
    """Install (or clear, with ``None``) the per-layer profiling probe."""
    global _LAYER_PROBE
    _LAYER_PROBE = probe


def layer_label(index: int, layer: Module) -> str:
    """Stable attribution label: position plus innermost module type."""
    inner = layer.inner if isinstance(layer, StepWrapper) else layer
    return f"L{index}:{type(inner).__name__}"


# ----------------------------------------------------------------------
# Time folding: frames <-> (T*N, ...) batches, time-major blocks
# ----------------------------------------------------------------------
def fold_time(frames: List[Tensor]) -> Tensor:
    """Pack per-step frames into one time-major folded batch."""
    return concatenate(frames, axis=0)


def unfold_time(fused: Tensor, timesteps: int) -> List[Tensor]:
    """Differentiable inverse of :func:`fold_time` (T row-block slices)."""
    total = fused.data.shape[0]
    if timesteps <= 0 or total % timesteps:
        raise ValueError(
            f"time-folded batch of {total} rows is not divisible by "
            f"timesteps={timesteps}"
        )
    n = total // timesteps
    return [fused[t * n:(t + 1) * n] for t in range(timesteps)]


def tile_time(frame: Tensor, timesteps: int) -> Tensor:
    """Repeat one frame T times along the batch axis (direct encoding).

    Backward sums the per-step gradient blocks — exactly the gradient a
    step-major loop accumulates when the same tensor is presented at
    every step.
    """
    data = frame.data
    out = np.broadcast_to(data, (timesteps,) + data.shape).reshape(
        (timesteps * data.shape[0],) + data.shape[1:]
    )

    def bwd(g):
        return (g.reshape((timesteps,) + data.shape).sum(axis=0),)

    return Tensor.from_op(out, (frame,), bwd, "tile_time")


def _has_patched_forward(module: Module) -> bool:
    """True when ``forward`` was instance-patched (a per-step probe)."""
    return "forward" in module.__dict__


def apply_fused(module: Module, x: Tensor, timesteps: int) -> Tensor:
    """Run ``module`` over a time-folded batch, preserving semantics.

    Dispatches to the module's ``forward_fused`` when it has one and its
    ``forward`` has not been instance-patched; otherwise unfolds the
    batch and replays the module step by step (correct for any stateful
    module, and required for probes that tap ``forward`` per step).
    """
    fused_fn = getattr(module, "forward_fused", None)
    if fused_fn is not None and not _has_patched_forward(module):
        return fused_fn(x, timesteps)
    return fold_time([module(f) for f in unfold_time(x, timesteps)])


class SpikingModule(Module):
    """Base class: one ``forward`` call advances one time step."""

    def reset_state(self) -> None:
        """Clear temporal state (membranes, dropout masks) recursively."""
        for child in self.children():
            if isinstance(child, (SpikingModule, SpikingNeuron)):
                child.reset_state()


class StepWrapper(SpikingModule):
    """Applies a stateless DNN module (conv / linear / pool / flatten)
    at every time step, sharing its weights across steps."""

    # Inners that are deterministic and act row-wise on the batch axis,
    # so a time-folded batch through one call equals T per-step calls.
    _FOLDABLE = (
        Conv2d, Linear, MaxPool2d, AvgPool2d, GlobalAvgPool2d, Flatten,
        Identity,
    )

    def __init__(self, inner: Module) -> None:
        super().__init__()
        self.inner = inner

    def forward(self, x: Tensor) -> Tensor:
        dispatch = active_dispatch()
        if dispatch is not None:
            out = dispatch.maybe_run(self.inner, x)
            if out is not None:
                return out
        return self.inner(x)

    def _folds(self) -> bool:
        """Whether one call on a folded batch matches T per-step calls."""
        if _has_patched_forward(self.inner):
            # A per-step probe on the inner module must fire once per
            # frame, never once on the folded batch.
            return False
        if isinstance(self.inner, self._FOLDABLE):
            return True
        # Eval-mode BatchNorm is a fixed per-row affine map; in training
        # it computes batch statistics, which a folded batch would pool
        # across time steps — run those per step instead.
        if isinstance(self.inner, BatchNorm2d):
            return not self.inner.training
        return False

    def forward_fused(self, x: Tensor, timesteps: int) -> Tensor:
        if self._folds():
            return self.forward(x)
        return fold_time(
            [self.forward(f) for f in unfold_time(x, timesteps)]
        )

    def extra_repr(self) -> str:
        return type(self.inner).__name__


class TemporalDropout(SpikingModule):
    """Dropout whose mask is sampled once per input and shared by all
    time steps, so the set of silenced units is consistent through the
    temporal unroll."""

    def __init__(self, p: float, rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError(f"dropout probability must be in [0, 1), got {p}")
        self.p = p
        self.rng = rng if rng is not None else np.random.default_rng()
        self._mask: Optional[np.ndarray] = None

    def reset_state(self) -> None:
        self._mask = None
        super().reset_state()

    def forward(self, x: Tensor) -> Tensor:
        if not self.training or self.p == 0.0:
            return x
        if self._mask is None or self._mask.shape != x.data.shape:
            keep = (self.rng.random(x.data.shape) >= self.p).astype(x.data.dtype)
            self._mask = keep / (1.0 - self.p)
        mask = self._mask

        def bwd(g):
            return (g * mask,)

        return Tensor.from_op(x.data * mask, (x,), bwd, "temporal_dropout")

    def forward_fused(self, x: Tensor, timesteps: int) -> Tensor:
        if not self.training or self.p == 0.0:
            return x
        total = x.data.shape[0]
        frame_shape = (total // timesteps,) + x.data.shape[1:]
        if self._mask is None or self._mask.shape != frame_shape:
            # Same RNG draw as the first step-major step: one mask per
            # frame, shared by all T time blocks.
            keep = (self.rng.random(frame_shape) >= self.p).astype(x.data.dtype)
            self._mask = keep / (1.0 - self.p)
        mask = np.tile(self._mask, (timesteps,) + (1,) * (x.data.ndim - 1))

        def bwd(g):
            return (g * mask,)

        return Tensor.from_op(x.data * mask, (x,), bwd, "temporal_dropout")

    def extra_repr(self) -> str:
        return f"p={self.p}"


class SpikingSequential(SpikingModule):
    """Ordered chain of spiking modules (one time step per call)."""

    def __init__(self, *layers: Module) -> None:
        super().__init__()
        self._layer_list: List[Module] = []
        for layer in layers:
            self.append(layer)

    def append(self, layer: Module) -> "SpikingSequential":
        index = len(self._layer_list)
        self._layer_list.append(layer)
        self.add_module(str(index), layer)
        return self

    def forward(self, x: Tensor) -> Tensor:
        probe = _LAYER_PROBE
        if probe is None:
            for layer in self._layer_list:
                x = layer(x)
            return x
        for index, layer in enumerate(self._layer_list):
            with probe(layer_label(index, layer)):
                x = layer(x)
        return x

    def forward_fused(self, x: Tensor, timesteps: int) -> Tensor:
        probe = _LAYER_PROBE
        if probe is None:
            for layer in self._layer_list:
                x = apply_fused(layer, x, timesteps)
            return x
        for index, layer in enumerate(self._layer_list):
            with probe(layer_label(index, layer)):
                x = apply_fused(layer, x, timesteps)
        return x

    def __iter__(self) -> Iterator[Module]:
        return iter(self._layer_list)

    def __getitem__(self, index) -> Module:
        return self._layer_list[index]

    def __len__(self) -> int:
        return len(self._layer_list)


class SpikingResidualBlock(SpikingModule):
    """Spiking twin of :class:`repro.models.resnet.BasicBlock`.

    The main-branch current (conv2 of the spikes of neuron1) and the
    shortcut current sum at the membrane of the output neuron, the
    standard treatment of skip connections in converted spiking ResNets.
    """

    def __init__(
        self,
        conv1: Module,
        neuron1: SpikingNeuron,
        conv2: Module,
        shortcut: Module,
        neuron2: SpikingNeuron,
    ) -> None:
        super().__init__()
        self.conv1 = conv1
        self.neuron1 = neuron1
        self.conv2 = conv2
        self.shortcut = shortcut
        self.neuron2 = neuron2

    def forward(self, x: Tensor) -> Tensor:
        branch = self.conv2(self.neuron1(self.conv1(x)))
        return self.neuron2(branch + self.shortcut(x))

    def forward_fused(self, x: Tensor, timesteps: int) -> Tensor:
        branch = apply_fused(
            self.conv2,
            apply_fused(
                self.neuron1, apply_fused(self.conv1, x, timesteps), timesteps
            ),
            timesteps,
        )
        shortcut = apply_fused(self.shortcut, x, timesteps)
        return apply_fused(self.neuron2, branch + shortcut, timesteps)


class SpikingNetwork(SpikingModule):
    """A converted SNN: encoder, spiking body, and the temporal loop.

    Parameters
    ----------
    body:
        Spiking pipeline mapping one input frame to one output-logit
        contribution (its last stage is the non-spiking output layer).
    timesteps:
        Number of time steps ``T`` (the paper's ultra-low-latency regime
        is T in {2, 3}).
    encoder:
        Input encoder; defaults to direct encoding.

    ``forward`` accepts a numpy batch or Tensor and returns the
    time-averaged logits; differentiable end-to-end through the unroll
    (BPTT) for SGL fine-tuning.

    ``mode`` selects the execution engine: ``"fused"`` (default) folds
    the T frames into the batch axis so each stateless layer runs one
    GEMM and neurons scan their membranes over the time blocks;
    ``"stepwise"`` is the classic step-major loop.  Both produce
    equivalent logits, spike counts and BPTT gradients.  A fused network
    falls back to stepwise automatically while a step monitor is
    attached (the per-step hook observes whole-network state at step
    boundaries, which layer-major execution never materialises).
    """

    OUTPUT_MODES = ("mean", "max", "last")
    MODES = ("fused", "stepwise")

    def __init__(
        self,
        body: SpikingModule,
        timesteps: int,
        encoder: Optional[Encoder] = None,
        output_mode: str = "mean",
        mode: str = "fused",
    ) -> None:
        super().__init__()
        if timesteps <= 0:
            raise ValueError("timesteps must be positive")
        if output_mode not in self.OUTPUT_MODES:
            raise ValueError(
                f"output_mode must be one of {self.OUTPUT_MODES}, got "
                f"'{output_mode}'"
            )
        if mode not in self.MODES:
            raise ValueError(
                f"mode must be one of {self.MODES}, got '{mode}'"
            )
        self.body = body
        self.timesteps = timesteps
        self.encoder = encoder if encoder is not None else DirectEncoder()
        # Output decoding: "mean" accumulates the output layer over all
        # steps (the paper's choice); "max" takes the elementwise max
        # over steps; "last" reads only the final step.
        self.output_mode = output_mode
        self.mode = mode
        # Per-timestep observer (repro.obs.instruments.StepMonitor);
        # None keeps the temporal loop on its fast path.
        self._step_monitor = None
        # Streaming hook: when True, ``forward`` skips the per-input
        # ``reset_state()`` so membranes (and pooling counts) stay warm
        # across consecutive windows.  Set via :meth:`streaming`.
        self.carry_state = False
        # Activity-adaptive sparse dispatch (repro.snn.dispatch); None
        # keeps every weight layer on the dense path.  Installed into
        # the module-global dispatch context only for eligible passes
        # (eval mode, gradients disabled), so training and autograd
        # probes never leave the dense autograd path.
        self._dispatch: Optional[SparseDispatch] = None

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    def attach_monitor(self, monitor) -> None:
        """Install an object whose ``on_step(step, network)`` is called
        after every simulated time step (see ``repro.obs.monitored``).

        While a monitor is attached, forward passes run stepwise even in
        fused mode, so the hook sees true step-boundary state."""
        self._step_monitor = monitor

    def detach_monitor(self) -> None:
        self._step_monitor = None

    def inject_faults(self, spec, telemetry=None):
        """Context manager realising a :class:`repro.faults.FaultSpec`
        on this network (see :func:`repro.faults.inject_faults`).

        Weight and neuron-parameter faults keep the fused engine;
        transmission faults instance-patch the affected neurons, which
        the fused path detects and replays per step — the same graceful
        degradation any per-step probe triggers.  On exit the network is
        restored bit-for-bit.
        """
        from ..faults import inject_faults as _inject

        return _inject(self, spec, telemetry=telemetry)

    # ------------------------------------------------------------------
    # Execution-mode plumbing
    # ------------------------------------------------------------------
    def resolved_mode(self) -> str:
        """The engine the next forward pass will actually use."""
        if self.mode == "stepwise" or self._step_monitor is not None:
            return "stepwise"
        return "fused"

    @contextmanager
    def using_mode(self, mode: str):
        """Pin the execution mode within a block (probes force stepwise)."""
        if mode not in self.MODES:
            raise ValueError(f"mode must be one of {self.MODES}, got '{mode}'")
        previous = self.mode
        self.mode = mode
        try:
            yield self
        finally:
            self.mode = previous

    @contextmanager
    def streaming(self):
        """Keep temporal state warm across forward calls.

        Inside the block consecutive ``forward`` calls continue from the
        previous window's membranes (and pooling counts) instead of
        resetting — the network behaves as one endless unroll chunked
        into windows, which is the semantics a streaming deployment
        needs.  State is cleared on entry and on exit, so the block
        starts cold and leaves no residue.  Both execution engines
        honour the carried state (the fused scan warm-starts from the
        carried membrane), and batch geometry must stay constant across
        windows.
        """
        previous = self.carry_state
        self.reset_state()
        self.carry_state = True
        try:
            yield self
        finally:
            self.carry_state = previous
            self.reset_state()

    # ------------------------------------------------------------------
    # Sparse dispatch plumbing
    # ------------------------------------------------------------------
    def enable_sparse_dispatch(
        self,
        crossover=None,
        int8: bool = False,
        count_ops: bool = False,
        defaults=None,
    ) -> SparseDispatch:
        """Route weight layers through the activity-adaptive dispatcher.

        ``crossover`` is ``None`` (conservative per-kind defaults), a
        path to a ``python -m repro.bench crossover`` artefact, or a
        :class:`~repro.snn.dispatch.CrossoverTable`.  ``int8=True``
        additionally packs each layer's weights to int8 so sparse
        gathers accumulate in integer form (quantize the network with
        ``repro.hw.quantize_weights(snn, 8)`` first if the dense
        fallback path should see the same weight grid).  ``count_ops=
        True`` keeps exact per-layer accumulate counts on every forward
        (what ``record_energy_profile`` consumes for measured energy) at
        a small per-layer bookkeeping cost; the default tracks densities
        and routing only.  Only no-grad eval passes are affected;
        training keeps the dense autograd path.  Returns the installed
        :class:`SparseDispatch`.
        """
        self._dispatch = SparseDispatch(
            crossover=crossover,
            int8=int8,
            count_ops=count_ops,
            defaults=defaults,
        )
        return self._dispatch

    def disable_sparse_dispatch(self) -> None:
        self._dispatch = None

    @property
    def sparse_dispatch(self) -> Optional[SparseDispatch]:
        return self._dispatch

    def _dispatch_eligible(self) -> bool:
        return (
            self._dispatch is not None
            and not self.training
            and not GradMode.is_enabled()
        )

    def forward(self, images) -> Tensor:
        if not self.carry_state:
            self.reset_state()
        if self._dispatch_eligible():
            with dispatch_context(self._dispatch):
                return self._run_engine(images)
        return self._run_engine(images)

    def _run_engine(self, images) -> Tensor:
        if self.resolved_mode() == "fused":
            return self._forward_fused(images)
        return self._forward_stepwise(images)

    def _encode_input(self, images) -> Tuple[Optional[Tensor], List[Tensor]]:
        """Returns ``(direct_frame, frames)``: a single in-graph frame
        under direct encoding (presented every step), or the encoded
        per-step frame list otherwise."""
        if isinstance(self.encoder, DirectEncoder):
            if isinstance(images, Tensor) and images.requires_grad:
                # Keep the input in the autograd graph (direct encoding
                # presents the same tensor every step), so gradients
                # w.r.t. the input are available — used by FGSM probes.
                return images, []
            data = images.data if isinstance(images, Tensor) else np.asarray(images)
            return Tensor(self.encoder(data, self.timesteps)[0]), []
        data = images.data if isinstance(images, Tensor) else np.asarray(images)
        return None, [Tensor(f) for f in self.encoder(data, self.timesteps)]

    def _forward_stepwise(self, images) -> Tensor:
        direct_frame, frames = self._encode_input(images)
        if direct_frame is not None:
            frames = [direct_frame] * self.timesteps
        from ..tensor import maximum

        total: Optional[Tensor] = None
        for step, frame in enumerate(frames):
            out = self.body(frame)
            if self._step_monitor is not None:
                self._step_monitor.on_step(step, self)
            if self.output_mode == "mean":
                total = out if total is None else total + out
            elif self.output_mode == "max":
                total = out if total is None else maximum(total, out)
            else:  # "last"
                total = out
        if self.output_mode == "mean":
            return total * (1.0 / self.timesteps)
        return total

    def _forward_fused(self, images) -> Tensor:
        timesteps = self.timesteps
        direct_frame, frames = self._encode_input(images)
        if direct_frame is not None:
            # Direct encoding presents identical frames: evaluate the
            # leading stateless prefix once on (N, ...) and tile its
            # output T times, so the first weight layer(s) never
            # recompute the same result per step.
            prefix, rest = self._direct_prefix()
            probe = _LAYER_PROBE
            out = direct_frame
            if probe is None:
                for wrapper in prefix:
                    out = wrapper(out)
                fused = tile_time(out, timesteps)
                for layer in rest:
                    fused = apply_fused(layer, fused, timesteps)
            else:
                # The flattened body keeps its positional labels: prefix
                # layers are indices [0, len(prefix)), the rest follow.
                for index, wrapper in enumerate(prefix):
                    with probe(layer_label(index, wrapper)):
                        out = wrapper(out)
                fused = tile_time(out, timesteps)
                for offset, layer in enumerate(rest):
                    with probe(layer_label(len(prefix) + offset, layer)):
                        fused = apply_fused(layer, fused, timesteps)
        else:
            fused = fold_time(frames)
            fused = apply_fused(self.body, fused, timesteps)
        return self._decode_output(fused)

    def _direct_prefix(self) -> Tuple[List[Module], List[Module]]:
        """Split a sequential body into (stateless prefix, remainder).

        The prefix is the leading run of :class:`StepWrapper` layers
        whose output is provably identical at every step under direct
        encoding — deterministic, row-wise inners with no per-step
        probes attached.  Nested, unpatched :class:`SpikingSequential`
        containers are flattened first (chaining their layers over the
        folded batch equals running the container), so converter-built
        bodies like ``SpikingSequential(features, classifier)`` still
        expose their leading conv stack.  Non-sequential bodies get an
        empty prefix.
        """
        if not isinstance(self.body, SpikingSequential):
            return [], [self.body]

        def flatten(seq: SpikingSequential) -> List[Module]:
            flat: List[Module] = []
            for layer in seq:
                if isinstance(layer, SpikingSequential) and not _has_patched_forward(layer):
                    flat.extend(flatten(layer))
                else:
                    flat.append(layer)
            return flat

        if _has_patched_forward(self.body):
            return [], [self.body]
        layers = flatten(self.body)
        prefix: List[Module] = []
        for layer in layers:
            if (
                isinstance(layer, StepWrapper)
                and layer._folds()
                and not _has_patched_forward(layer)
            ):
                prefix.append(layer)
            else:
                break
        return prefix, layers[len(prefix):]

    def _decode_output(self, fused: Tensor) -> Tensor:
        """Reduce the time-folded output blocks per ``output_mode``."""
        timesteps = self.timesteps
        per_step = fused.reshape(
            (timesteps, fused.data.shape[0] // timesteps) + fused.data.shape[1:]
        )
        if self.output_mode == "mean":
            return per_step.mean(axis=0)
        if self.output_mode == "max":
            from ..tensor import maximum

            # Fold pairwise in step order — the same tie-handling as the
            # stepwise loop's running maximum.
            total = per_step[0]
            for t in range(1, timesteps):
                total = maximum(total, per_step[t])
            return total
        return per_step[timesteps - 1]

    # ------------------------------------------------------------------
    # Spiking statistics
    # ------------------------------------------------------------------
    def spiking_neurons(self) -> List[SpikingNeuron]:
        return [m for m in self.modules() if isinstance(m, SpikingNeuron)]

    def set_recording(self, enabled: bool) -> None:
        for neuron in self.spiking_neurons():
            neuron.recording = enabled

    def reset_spike_stats(self) -> None:
        for neuron in self.spiking_neurons():
            neuron.reset_spike_stats()

    def total_spikes(self) -> float:
        return sum(neuron.spike_count for neuron in self.spiking_neurons())

    def extra_repr(self) -> str:
        return (
            f"timesteps={self.timesteps}, "
            f"encoder={type(self.encoder).__name__}, mode={self.mode}"
        )
