"""Spike-timing-dependent plasticity (pair-based STDP).

The conversion pipeline is the paper's focus, but an SNN library needs
the native local learning rule too (the hybrid-conversion line of work
the paper cites [13] combines conversion with spike-timing learning).
This module implements the standard pair-based trace formulation for
``Linear`` synapses:

    x_pre(t)  = decay_pre  * x_pre(t-1)  + S_pre(t)     (pre trace)
    x_post(t) = decay_post * x_post(t-1) + S_post(t)    (post trace)

    dW = lr_plus  * S_post(t) x_pre(t)^T     (potentiation: pre before post)
       - lr_minus * x_post(t) S_pre(t)^T     (depression:  post before pre)

Weights are clipped to ``[w_min, w_max]`` after every step (hard
bounds).  :class:`STDPLearner` wraps one spiking projection (a weight
layer followed by a neuron layer) and updates it online, without any
gradient machinery — purely local, as on neuromorphic hardware.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..nn import Linear
from ..snn.neurons import SpikingNeuron


@dataclass
class STDPConfig:
    """Pair-based STDP hyperparameters."""

    lr_plus: float = 1e-3
    lr_minus: float = 1.2e-3
    decay_pre: float = 0.7
    decay_post: float = 0.7
    w_min: float = -1.0
    w_max: float = 1.0

    def __post_init__(self) -> None:
        if self.lr_plus < 0 or self.lr_minus < 0:
            raise ValueError("learning rates must be non-negative")
        if not (0.0 <= self.decay_pre <= 1.0 and 0.0 <= self.decay_post <= 1.0):
            raise ValueError("trace decays must lie in [0, 1]")
        if self.w_min >= self.w_max:
            raise ValueError("w_min must be below w_max")


class STDPLearner:
    """Online STDP for one ``Linear`` projection.

    Call :meth:`step` once per time step with the binary (or
    amplitude-coded) pre- and post-synaptic spike tensors, shaped
    ``(batch, in_features)`` and ``(batch, out_features)``.  Updates are
    averaged over the batch.  :meth:`reset` clears the traces between
    inputs.
    """

    def __init__(self, layer: Linear, config: Optional[STDPConfig] = None) -> None:
        if not isinstance(layer, Linear):
            raise TypeError("STDPLearner supports Linear layers")
        self.layer = layer
        self.config = config or STDPConfig()
        self._trace_pre: Optional[np.ndarray] = None
        self._trace_post: Optional[np.ndarray] = None

    def reset(self) -> None:
        self._trace_pre = None
        self._trace_post = None

    def step(self, pre_spikes: np.ndarray, post_spikes: np.ndarray) -> None:
        """One STDP update from simultaneous pre/post activity."""
        cfg = self.config
        pre = np.asarray(pre_spikes, dtype=np.float64)
        post = np.asarray(post_spikes, dtype=np.float64)
        if pre.ndim != 2 or post.ndim != 2:
            raise ValueError("spike tensors must be (batch, features)")
        if pre.shape[1] != self.layer.in_features:
            raise ValueError(
                f"pre spikes have {pre.shape[1]} features; layer expects "
                f"{self.layer.in_features}"
            )
        if post.shape[1] != self.layer.out_features:
            raise ValueError(
                f"post spikes have {post.shape[1]} features; layer expects "
                f"{self.layer.out_features}"
            )
        if pre.shape[0] != post.shape[0]:
            raise ValueError("batch size mismatch between pre and post")

        if self._trace_pre is None:
            self._trace_pre = np.zeros_like(pre)
            self._trace_post = np.zeros_like(post)
        self._trace_pre = cfg.decay_pre * self._trace_pre + pre
        self._trace_post = cfg.decay_post * self._trace_post + post

        batch = pre.shape[0]
        potentiation = post.T @ self._trace_pre / batch
        depression = self._trace_post.T @ pre / batch
        delta = cfg.lr_plus * potentiation - cfg.lr_minus * depression
        self.layer.weight.data += delta
        np.clip(
            self.layer.weight.data, cfg.w_min, cfg.w_max,
            out=self.layer.weight.data,
        )


def run_stdp_session(
    learner: STDPLearner,
    neuron: SpikingNeuron,
    spike_frames: np.ndarray,
) -> np.ndarray:
    """Drive one projection with a spike train and learn online.

    ``spike_frames`` is ``(T, batch, in_features)``; returns the post-
    synaptic spike raster ``(T, batch, out_features)``.  The neuron and
    traces are reset first.
    """
    from ..tensor import Tensor, no_grad

    frames = np.asarray(spike_frames, dtype=np.float64)
    if frames.ndim != 3:
        raise ValueError("spike_frames must be (T, batch, in_features)")
    learner.reset()
    neuron.reset_state()
    raster = []
    with no_grad():
        for frame in frames:
            current = learner.layer(Tensor(frame))
            post = neuron(current).data
            post_binary = (post != 0.0).astype(np.float64)
            learner.step(frame, post_binary)
            raster.append(post_binary)
    return np.stack(raster, axis=0)
