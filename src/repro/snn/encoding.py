"""Input encoders: analog images -> per-time-step SNN inputs.

The paper adopts *direct encoding* (Section I): the analog pixel values
are fed to the first convolution at every time step, so only subsequent
layers communicate with binary spikes.  Rate (Poisson) and
time-to-first-spike encoders are provided for comparison experiments —
they are the classical alternatives the introduction surveys.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..tensor import get_default_dtype


class Encoder:
    """Base encoder: produces the input for each of ``timesteps`` steps.

    Inputs are cast to ``repro.tensor``'s default dtype, so the float32
    fast path (``set_default_dtype(np.float32)``) carries through the
    whole temporal unroll instead of silently upcasting at the encoder.
    """

    def encode(self, images: np.ndarray, timesteps: int) -> List[np.ndarray]:
        raise NotImplementedError

    def __call__(self, images: np.ndarray, timesteps: int) -> List[np.ndarray]:
        if timesteps <= 0:
            raise ValueError("timesteps must be positive")
        return self.encode(
            np.asarray(images, dtype=get_default_dtype()), timesteps
        )


class DirectEncoder(Encoder):
    """Direct encoding: the analog image is presented at every step.

    The first layer therefore performs MACs (weights x analog values);
    all later layers see binary spikes and use only ACs — the FLOP
    accounting in :mod:`repro.energy` models exactly this split.
    """

    def encode(self, images: np.ndarray, timesteps: int) -> List[np.ndarray]:
        return [images] * timesteps


class PoissonEncoder(Encoder):
    """Rate coding: Bernoulli spikes with probability = pixel intensity.

    Pixel values are clipped to [0, 1] (inputs are expected roughly
    normalised); the expected spike count over T steps is ``T * x``.
    """

    def __init__(self, rng: Optional[np.random.Generator] = None, gain: float = 1.0) -> None:
        if gain <= 0:
            raise ValueError("gain must be positive")
        self.rng = rng if rng is not None else np.random.default_rng()
        self.gain = gain

    def encode(self, images: np.ndarray, timesteps: int) -> List[np.ndarray]:
        probs = np.clip(images * self.gain, 0.0, 1.0)
        dtype = get_default_dtype()
        return [
            (self.rng.random(probs.shape) < probs).astype(dtype)
            for _ in range(timesteps)
        ]


class PassthroughEncoder(Encoder):
    """For inputs that are already spike trains (event-camera data).

    Expects batches shaped ``(N, T, ...)``; yields the T frames in
    order.  ``timesteps`` must match the data's temporal length.
    """

    def encode(self, images: np.ndarray, timesteps: int) -> List[np.ndarray]:
        if images.ndim < 2:
            raise ValueError("event input must be at least (N, T, ...)")
        if images.shape[1] != timesteps:
            raise ValueError(
                f"event data has T={images.shape[1]} frames but the network "
                f"runs {timesteps} steps"
            )
        return [images[:, t] for t in range(timesteps)]


class TTFSEncoder(Encoder):
    """Time-to-first-spike coding: one spike per pixel, earlier = brighter.

    Pixel ``x`` in [0, 1] spikes once at step ``floor((1 - x) * T)``
    (clamped to the last step); zero pixels never spike.
    """

    def encode(self, images: np.ndarray, timesteps: int) -> List[np.ndarray]:
        clipped = np.clip(images, 0.0, 1.0)
        spike_step = np.floor((1.0 - clipped) * timesteps).astype(np.int64)
        spike_step = np.minimum(spike_step, timesteps - 1)
        dtype = get_default_dtype()
        frames = []
        for t in range(timesteps):
            fires = (spike_step == t) & (clipped > 0.0)
            frames.append(fires.astype(dtype))
        return frames
