"""Event-driven execution and exact accumulate accounting.

On neuromorphic hardware a converted SNN performs work only when spikes
arrive: each input spike triggers one accumulate per outgoing synapse.
The dense simulator in :mod:`repro.snn.network` computes the same
numbers with GEMMs, and :mod:`repro.energy.flops` *estimates* the
accumulate count from average spike rates.  This module closes the
loop:

- :class:`EventDrivenNetwork` re-runs a converted network input-by-
  input, counting the **exact** number of accumulates every weight
  layer performs (one per spike event per reachable output connection)
  while producing bit-identical outputs to the dense simulator;
- with ``sparse=True`` the synaptic propagation itself is executed
  event-by-event (scatter-accumulate over the active inputs), a
  reference implementation of how a neuromorphic core would process the
  layer.  It is slower in numpy but validates that the dense GEMM and
  the event-driven semantics agree exactly.

The exact counts let the test-suite bound the error of the rate-based
FLOP estimator — the quantity behind the paper's Fig. 4(b)/(c).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..nn import Conv2d, Linear
from ..tensor import Tensor, no_grad
from ..tensor.sparse import pack_spikes, sparse_conv2d_gather, sparse_linear_gather
from .network import SpikingNetwork, StepWrapper


def conv_fanout_map(
    in_shape: Tuple[int, int, int], layer: Conv2d
) -> np.ndarray:
    """Per-input-position fan-out of a convolution.

    Returns an ``(C, H, W)`` integer array: the number of *output*
    connections each input element feeds (``out_channels x`` the number
    of kernel placements covering that position).  Border positions
    have smaller fan-out — exactly the count a spike event from that
    position triggers.
    """
    channels, height, width = in_shape
    k, s, p = layer.kernel_size, layer.stride, layer.padding
    out_h = (height + 2 * p - k) // s + 1
    out_w = (width + 2 * p - k) // s + 1

    def coverage(length: int, out_len: int) -> np.ndarray:
        counts = np.zeros(length, dtype=np.int64)
        for out_index in range(out_len):
            start = out_index * s - p
            lo, hi = max(0, start), min(length, start + k)
            if hi > lo:
                counts[lo:hi] += 1
        return counts

    rows = coverage(height, out_h)
    cols = coverage(width, out_w)
    per_position = rows[:, None] * cols[None, :] * layer.out_channels
    return np.broadcast_to(per_position, (channels, height, width)).copy()


def sparse_conv2d(
    spikes: np.ndarray, layer: Conv2d
) -> np.ndarray:
    """Event-driven convolution over the active inputs only.

    Vectorised gather/segment-sum execution (``repro.tensor.sparse``):
    events are packed once, each kernel offset gathers its per-channel
    weight rows and accumulates sorted output-row runs — no per-event
    Python loop.  Semantics are unchanged from the original reference
    implementation (one accumulate per spike per reachable output
    connection).
    """
    return sparse_conv2d_gather(
        pack_spikes(spikes),
        weight=layer.weight.data,
        stride=layer.stride,
        padding=layer.padding,
        bias=layer.bias.data if layer.bias is not None else None,
    )


def sparse_linear(spikes: np.ndarray, layer: Linear) -> np.ndarray:
    """Event-driven linear layer: accumulate active columns only.

    Vectorised: one transposed weight gather over the packed event
    columns plus a segment sum per sample row.
    """
    return sparse_linear_gather(
        pack_spikes(spikes),
        weight=layer.weight.data,
        bias=layer.bias.data if layer.bias is not None else None,
    )


@dataclass
class EventCounts:
    """Exact per-layer event statistics over a measurement run.

    ``accumulates`` are synaptic operations (one per spike event per
    reachable output connection); ``input_events`` are the raw spike
    arrivals at each weight layer (summed over time steps and batch);
    ``input_shapes`` the per-image input shape each layer saw.
    """

    layer_names: List[str] = field(default_factory=list)
    accumulates: List[float] = field(default_factory=list)
    input_events: List[float] = field(default_factory=list)
    input_shapes: List[Tuple[int, ...]] = field(default_factory=list)
    images: int = 0

    @property
    def total(self) -> float:
        return float(sum(self.accumulates))

    def per_image(self) -> List[float]:
        if self.images == 0:
            return [0.0] * len(self.accumulates)
        return [a / self.images for a in self.accumulates]

    def input_events_per_image(self) -> List[float]:
        if self.images == 0:
            return [0.0] * len(self.input_events)
        return [e / self.images for e in self.input_events]


class EventDrivenNetwork:
    """Runs a converted SNN with exact event accounting.

    Parameters
    ----------
    snn:
        A converted :class:`SpikingNetwork` (evaluated in eval mode).
    sparse:
        If True, hidden-layer synaptic propagation is executed with the
        event-by-event reference kernels (slow; use small inputs).
        Otherwise the dense GEMM computes values while events are
        counted exactly from the spike tensors.

    Usage::

        runner = EventDrivenNetwork(snn)
        logits, counts = runner.run(images)
    """

    def __init__(self, snn: SpikingNetwork, sparse: bool = False) -> None:
        self.snn = snn
        self.sparse = sparse
        self._counts: Optional[EventCounts] = None
        self._fanout_cache: Dict[int, np.ndarray] = {}
        self._first_weight_layer: Optional[int] = None
        # Weight layers in execution order, populated by run(); aligned
        # with the EventCounts lists (consumed by repro.hw.map_network).
        self.weight_layers: List = []

    # ------------------------------------------------------------------
    def _wrap_layers(self) -> List:
        wrappers = [
            m for m in self.snn.modules()
            if isinstance(m, StepWrapper) and isinstance(m.inner, (Conv2d, Linear))
        ]
        patched = []
        counts = self._counts
        if self._first_weight_layer is None and wrappers:
            self._first_weight_layer = id(wrappers[0])
        self.weight_layers = [w.inner for w in wrappers]
        for index, wrapper in enumerate(wrappers):
            inner = wrapper.inner
            name = f"{type(inner).__name__.lower()}{index}"
            if len(counts.layer_names) < len(wrappers):
                counts.layer_names.append(name)
                counts.accumulates.append(0.0)
                counts.input_events.append(0.0)
                counts.input_shapes.append(())
            original = wrapper.forward
            had_instance_forward = "forward" in wrapper.__dict__

            def counting(
                x: Tensor,
                _inner=inner,
                _index=index,
                _orig=original,
                _wrapper=wrapper,
            ):
                data = x.data
                counts.input_shapes[_index] = tuple(data.shape[1:])
                is_first = id(_wrapper) == self._first_weight_layer
                if is_first:
                    # Analog direct-encoded input: every element is an
                    # "event" at every step (the closure runs per step).
                    counts.input_events[_index] += float(data.size)
                else:
                    counts.input_events[_index] += float((data != 0.0).sum())
                if is_first:
                    # Direct-encoded analog input: every connection is a
                    # MAC each step — dense count, dense compute.
                    if isinstance(_inner, Conv2d):
                        fanout = self._fanout_for(_inner, data.shape[1:])
                        counts.accumulates[_index] += float(
                            fanout.sum() * data.shape[0]
                        )
                    else:
                        counts.accumulates[_index] += float(
                            data.shape[0] * _inner.in_features * _inner.out_features
                        )
                    return _orig(x)
                if isinstance(_inner, Conv2d):
                    fanout = self._fanout_for(_inner, data.shape[1:])
                    active = data != 0.0
                    counts.accumulates[_index] += float(
                        (active * fanout[None]).sum()
                    )
                    if self.sparse:
                        return Tensor(sparse_conv2d(data, _inner))
                    return _orig(x)
                active_counts = (data != 0.0).sum()
                counts.accumulates[_index] += float(
                    active_counts * _inner.out_features
                )
                if self.sparse:
                    return Tensor(sparse_linear(data, _inner))
                return _orig(x)

            object.__setattr__(wrapper, "forward", counting)
            patched.append((wrapper, original, had_instance_forward))
        return patched

    def _fanout_for(self, layer: Conv2d, in_shape) -> np.ndarray:
        key = (id(layer), tuple(in_shape))
        if key not in self._fanout_cache:
            self._fanout_cache[key] = conv_fanout_map(tuple(in_shape), layer)
        return self._fanout_cache[key]

    # ------------------------------------------------------------------
    def run(self, images: np.ndarray) -> Tuple[Tensor, EventCounts]:
        """One inference pass; returns (logits, exact event counts)."""
        images = np.asarray(images)
        self._counts = EventCounts(images=images.shape[0])
        self._first_weight_layer = None
        patched = self._wrap_layers()
        was_training = self.snn.training
        self.snn.eval()
        try:
            with no_grad():
                logits = self.snn(images)
        finally:
            self.snn.train(was_training)
            for wrapper, original, had_instance_forward in patched:
                if had_instance_forward:
                    object.__setattr__(wrapper, "forward", original)
                else:
                    # Restore by *removing* the instance attribute: an
                    # assigned bound method would read as a patched
                    # forward forever after, silently degrading the
                    # fused engine's folding/prefix optimisations.
                    object.__delattr__(wrapper, "forward")
        return logits, self._counts
