"""Spiking neuron models: IF and LIF with scaled spike amplitude.

Dynamics follow Eqs. (2)-(4) of the paper with the Eq. (8) output
scaling that the proposed conversion introduces:

    U_tmp(t) = lambda * U(t-1) + I(t)          # leaky integration
    S(t)     = beta * V^th   if U_tmp(t) > V^th else 0
    U(t)     = U_tmp(t) - V^th * 1{spike}      # soft reset by threshold

Notes
-----
- The *reset* subtracts the threshold ``V^th`` (not the scaled output
  ``beta V^th``): ``beta`` only rescales what downstream layers see and
  can be absorbed into their weights (Section III-B), so it must not
  alter the neuron's internal charge bookkeeping.
- ``V^th`` and ``lambda`` are trainable parameters (jointly fine-tuned
  with the weights during SGL, following DIET-SNN); the surrogate
  gradient routes credit through the Heaviside.
- With ``lambda = 1`` the model is the Integrate-and-Fire neuron used
  for conversion; SGL may then learn per-layer leaks.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..nn.module import Module, Parameter
from ..tensor import Tensor
from .surrogate import SurrogateFn, get_surrogate


def spike_function(
    u_temp: Tensor,
    v_threshold: Tensor,
    beta: float,
    surrogate: SurrogateFn,
) -> Tensor:
    """Differentiable (via surrogate) spike emission.

    Forward: ``beta * v_th * 1{u > v_th}``.

    Backward:
    - w.r.t. ``u``: the surrogate window ``g(u, v_th)`` (the paper uses
      a boxcar equal to 1 on ``[0, 2 v_th]``);
    - w.r.t. ``v_th``: ``beta * 1{spike}`` from the amplitude term minus
      the surrogate window from the firing condition — raising the
      threshold raises each emitted spike's amplitude but suppresses
      marginal spikes.
    """
    v_th = float(v_threshold.data.reshape(-1)[0])
    if v_th <= 0:
        raise ValueError(f"spiking threshold must be positive, got {v_th}")
    fired = u_temp.data > v_th
    out = np.where(fired, beta * v_th, 0.0)
    window = surrogate(u_temp.data, v_th)

    def bwd(g):
        gu = g * window
        gv = (g * (beta * fired.astype(g.dtype) - window)).sum()
        return (gu, np.full(v_threshold.data.shape, gv))

    return Tensor.from_op(out, (u_temp, v_threshold), bwd, "spike")


class SpikingNeuron(Module):
    """A layer of IF/LIF neurons sharing one threshold and leak.

    Parameters
    ----------
    v_threshold:
        Initial firing threshold ``V^th`` (after conversion this is
        ``alpha * mu`` for the layer).
    beta:
        Spike-amplitude scale from Eq. (8).  ``1.0`` recovers the plain
        IF neuron; the converter sets the per-layer optimum and can
        absorb it into downstream weights.
    leak:
        Membrane leak ``lambda``; ``1.0`` gives IF dynamics.
    trainable:
        Whether threshold and leak receive gradients during SGL.
    surrogate:
        Name of the surrogate gradient (default: the paper's boxcar).

    State
    -----
    ``membrane`` holds ``U(t)`` between calls; :meth:`reset_state`
    clears it (done automatically by the network at every new input).
    """

    def __init__(
        self,
        v_threshold: float = 1.0,
        beta: float = 1.0,
        leak: float = 1.0,
        trainable: bool = True,
        surrogate: str = "boxcar",
        initial_potential: float = 0.0,
        reset_mode: str = "soft",
    ) -> None:
        super().__init__()
        if v_threshold <= 0:
            raise ValueError("v_threshold must be positive")
        if beta <= 0:
            raise ValueError("beta must be positive")
        if not 0.0 <= leak <= 1.0:
            raise ValueError("leak must lie in [0, 1]")
        if reset_mode not in ("soft", "hard"):
            raise ValueError("reset_mode must be 'soft' or 'hard'")
        self.v_threshold = Parameter(np.array([float(v_threshold)]))
        self.leak = Parameter(np.array([float(leak)]))
        if not trainable:
            self.v_threshold.requires_grad = False
            self.leak.requires_grad = False
        self.beta = float(beta)
        # Non-zero initial membrane potential implements the bias shift
        # delta = V^th / 2T of Deng et al. [15] (a charge of V^th/2 at
        # t=0 shifts the average-rate staircase left by V^th/2T).
        self.initial_potential = float(initial_potential)
        # "soft" (reset-by-subtraction, Eq. 4) conserves residual charge
        # and is required for the rate-staircase equivalence the
        # conversion relies on; "hard" (reset-to-zero) discards it —
        # provided for comparison with the classic conversion
        # literature, where it is a known accuracy loss.
        self.reset_mode = reset_mode
        self.surrogate_name = surrogate
        self.surrogate = get_surrogate(surrogate)
        self.membrane: Optional[Tensor] = None
        # Spike statistics (populated when ``recording`` is on).
        self.recording = False
        self.spike_count = 0.0
        self.neuron_count = 0
        self.step_count = 0

    # ------------------------------------------------------------------
    @property
    def threshold(self) -> float:
        return float(self.v_threshold.data[0])

    @property
    def leak_value(self) -> float:
        return float(self.leak.data[0])

    def reset_state(self) -> None:
        self.membrane = None

    def reset_spike_stats(self) -> None:
        self.spike_count = 0.0
        self.neuron_count = 0
        self.step_count = 0

    def forward(self, current: Tensor) -> Tensor:
        """Advance one time step with input current ``I(t)``."""
        if self.membrane is None:
            membrane = Tensor(
                np.full_like(current.data, self.initial_potential)
            )
        else:
            membrane = self.membrane
        u_temp = membrane * self.leak + current
        spikes = spike_function(u_temp, self.v_threshold, self.beta, self.surrogate)
        fired_mask = (spikes.data != 0.0).astype(current.data.dtype)
        if self.reset_mode == "soft":
            self.membrane = u_temp - self.v_threshold * Tensor(fired_mask)
        else:  # hard reset: zero the fired units, graph detached there
            from ..tensor import where

            self.membrane = where(
                fired_mask != 0.0, Tensor(np.zeros_like(u_temp.data)), u_temp
            )
        if self.recording:
            self.spike_count += float(fired_mask.sum())
            self.neuron_count = int(np.prod(current.data.shape[1:]))
            self.step_count += 1
        return spikes

    def extra_repr(self) -> str:
        return (
            f"v_th={self.threshold:.4f}, beta={self.beta:.4f}, "
            f"leak={self.leak_value:.4f}, surrogate={self.surrogate_name}"
        )


class IFNeuron(SpikingNeuron):
    """Integrate-and-Fire neuron (``leak = 1``), the conversion target."""

    def __init__(
        self,
        v_threshold: float = 1.0,
        beta: float = 1.0,
        trainable: bool = True,
        surrogate: str = "boxcar",
        initial_potential: float = 0.0,
    ) -> None:
        super().__init__(
            v_threshold=v_threshold,
            beta=beta,
            leak=1.0,
            trainable=trainable,
            surrogate=surrogate,
            initial_potential=initial_potential,
        )


class LIFNeuron(SpikingNeuron):
    """Leaky Integrate-and-Fire neuron with trainable leak."""
