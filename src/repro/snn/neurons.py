"""Spiking neuron models: IF and LIF with scaled spike amplitude.

Dynamics follow Eqs. (2)-(4) of the paper with the Eq. (8) output
scaling that the proposed conversion introduces:

    U_tmp(t) = lambda * U(t-1) + I(t)          # leaky integration
    S(t)     = beta * V^th   if U_tmp(t) > V^th else 0
    U(t)     = U_tmp(t) - V^th * 1{spike}      # soft reset by threshold

Notes
-----
- The *reset* subtracts the threshold ``V^th`` (not the scaled output
  ``beta V^th``): ``beta`` only rescales what downstream layers see and
  can be absorbed into their weights (Section III-B), so it must not
  alter the neuron's internal charge bookkeeping.
- ``V^th`` and ``lambda`` are trainable parameters (jointly fine-tuned
  with the weights during SGL, following DIET-SNN); the surrogate
  gradient routes credit through the Heaviside.
- With ``lambda = 1`` the model is the Integrate-and-Fire neuron used
  for conversion; SGL may then learn per-layer leaks.
"""

from __future__ import annotations

from typing import Optional, Tuple, Union

import numpy as np

from ..nn.module import Module, Parameter
from ..tensor import GradMode, Tensor
from .dispatch import active_dispatch
from .surrogate import SurrogateFn, get_surrogate


def _silence_units(spikes: Tensor, alive: np.ndarray) -> Tensor:
    """Zero the spikes of dead units (mask broadcast over the batch).

    The gradient is masked identically, so silenced units carry no
    credit — the autograd view of a unit that never transmits.
    """
    mask = alive.astype(spikes.data.dtype)

    def bwd(g):
        return (g * mask,)

    return Tensor.from_op(spikes.data * mask, (spikes,), bwd, "dead_units")


def spike_function(
    u_temp: Tensor,
    v_threshold: Tensor,
    beta: float,
    surrogate: SurrogateFn,
) -> Tensor:
    """Differentiable (via surrogate) spike emission.

    Forward: ``beta * v_th * 1{u > v_th}``.

    Backward:
    - w.r.t. ``u``: the surrogate window ``g(u, v_th)`` (the paper uses
      a boxcar equal to 1 on ``[0, 2 v_th]``);
    - w.r.t. ``v_th``: ``beta * 1{spike}`` from the amplitude term minus
      the surrogate window from the firing condition — raising the
      threshold raises each emitted spike's amplitude but suppresses
      marginal spikes.
    """
    v_th = float(v_threshold.data.reshape(-1)[0])
    if v_th <= 0:
        raise ValueError(f"spiking threshold must be positive, got {v_th}")
    fired = u_temp.data > v_th
    dtype = u_temp.data.dtype
    out = np.where(fired, dtype.type(beta * v_th), dtype.type(0.0))
    window = surrogate(u_temp.data, v_th)

    def bwd(g):
        gu = g * window
        gv = (g * (beta * fired.astype(g.dtype) - window)).sum()
        return (gu, np.full(v_threshold.data.shape, gv))

    return Tensor.from_op(out, (u_temp, v_threshold), bwd, "spike")


def _initial_membrane(initial_potential, frame_shape, dtype) -> np.ndarray:
    """Materialise the membrane entering the scan.

    A scalar fills a fresh frame-shaped membrane (cold start); an array
    is a carried membrane from a previous window (warm start) and must
    already match the frame shape — a mismatch means the stream changed
    batch geometry mid-flight, which has no meaningful continuation.
    """
    if np.ndim(initial_potential) == 0:
        return np.full(frame_shape, initial_potential, dtype=dtype)
    carried = np.asarray(initial_potential, dtype=dtype)
    if carried.shape != tuple(frame_shape):
        raise ValueError(
            f"carried membrane shape {carried.shape} does not match "
            f"frame shape {tuple(frame_shape)}"
        )
    return carried.copy()


def fused_spike_scan(
    current: Tensor,
    v_threshold: Tensor,
    leak: Tensor,
    beta: float,
    surrogate: SurrogateFn,
    timesteps: int,
    reset_mode: str = "soft",
    initial_potential: Union[float, np.ndarray] = 0.0,
) -> Tuple[Tensor, np.ndarray, float]:
    """Membrane dynamics over a time-folded batch as one differentiable op.

    ``current`` packs the per-step input currents time-major along the
    batch axis: row block ``t`` (rows ``t*N .. (t+1)*N``) is the current
    of step ``t``.  The forward pass runs the Eq. (2)-(4) recurrence as a
    vectorised scan over the ``T`` blocks (cheap elementwise work — the
    expensive GEMMs upstream already ran once on the folded batch) and the
    single backward function replays the scan in reverse, producing the
    same gradients BPTT accumulates through the step-major chain of
    ``spike_function`` / reset ops: the surrogate window routes credit at
    each step, residual membrane carries ``leak *`` gradient to the
    previous step, and threshold/leak receive their summed contributions.

    Returns ``(spikes, final_membrane, fired_total)``: the spike train in
    the same time-folded layout, the post-scan membrane ``U(T)`` (shape of
    one frame), and the total number of emitted spikes — the by-products
    :meth:`SpikingNeuron.forward_fused` needs for state and statistics.
    """
    data = current.data
    if timesteps <= 0 or data.shape[0] % timesteps:
        raise ValueError(
            f"time-folded batch of {data.shape[0]} rows is not divisible "
            f"by timesteps={timesteps}"
        )
    v_th = float(v_threshold.data.reshape(-1)[0])
    if v_th <= 0:
        raise ValueError(f"spiking threshold must be positive, got {v_th}")
    leak_val = float(leak.data.reshape(-1)[0])
    n = data.shape[0] // timesteps
    frames = data.reshape((timesteps, n) + data.shape[1:])
    dtype = data.dtype
    amp = dtype.type(beta * v_th)
    zero = dtype.type(0.0)

    # The surrogate windows and entering membranes exist only to serve
    # the backward scan — skip them entirely on inference passes.
    needs_grad = GradMode.is_enabled() and (
        current.requires_grad
        or v_threshold.requires_grad
        or leak.requires_grad
    )
    out = np.empty_like(frames)
    fired_all = np.empty(frames.shape, dtype=bool)

    if not needs_grad:
        # Inference fast path: update the membrane in place and skip the
        # surrogate windows / entering-membrane history entirely.  Every
        # elementwise op writes into a preallocated buffer — the spike
        # rows of ``out``, the ``fired_all`` rows, one reset temporary —
        # so the scan allocates nothing per step.
        u = _initial_membrane(initial_potential, frames.shape[1:], dtype)
        reset_tmp = None if beta == 1.0 else np.empty_like(u)
        for t in range(timesteps):
            if leak_val != 1.0:
                u *= dtype.type(leak_val)
            u += frames[t]
            fired = fired_all[t]
            np.greater(u, v_th, out=fired)
            np.multiply(fired, amp, out=out[t])
            if reset_mode == "soft":
                if beta == 1.0:
                    # amp == v_th: the spike row already is v_th * fired.
                    u -= out[t]
                else:
                    np.multiply(fired, dtype.type(v_th), out=reset_tmp)
                    u -= reset_tmp
            else:
                u[fired] = zero
        return Tensor(out.reshape(data.shape), dtype=dtype), u, float(fired_all.sum())

    windows = np.empty_like(frames)
    u_prev = np.empty_like(frames)  # membrane entering each step
    u = _initial_membrane(initial_potential, frames.shape[1:], dtype)
    for t in range(timesteps):
        u_prev[t] = u
        u_tmp = u * leak_val + frames[t]
        fired = u_tmp > v_th
        fired_all[t] = fired
        out[t] = np.where(fired, amp, zero)
        windows[t] = surrogate(u_tmp, v_th)
        if reset_mode == "soft":
            u = u_tmp - v_th * fired.astype(dtype)
        else:
            u = np.where(fired, zero, u_tmp)

    spikes = Tensor.from_op(
        out.reshape(data.shape),
        (current, v_threshold, leak),
        _fused_scan_backward(
            frames.shape, data.shape, windows, fired_all, u_prev,
            beta, leak_val, reset_mode,
            v_threshold, leak,
        ),
        "fused_spike_scan",
    )
    return spikes, u, float(fired_all.sum())


def _fused_scan_backward(
    frame_shape, flat_shape, windows, fired_all, u_prev,
    beta, leak_val, reset_mode, v_threshold, leak,
):
    """Reverse-time adjoint of the fused scan (one closure per forward)."""
    timesteps = frame_shape[0]

    def bwd(g):
        g_frames = g.reshape(frame_shape)
        grad_current = np.empty(frame_shape, dtype=g.dtype)
        gv = 0.0
        gleak = 0.0
        grad_u = None  # gradient w.r.t. the post-reset membrane U(t)
        for t in range(timesteps - 1, -1, -1):
            gs = g_frames[t]
            window = windows[t]
            fired = fired_all[t]
            g_utmp = gs * window
            if grad_u is not None:
                if reset_mode == "soft":
                    # U(t) = U_tmp(t) - V^th * 1{spike}: pass-through to
                    # U_tmp, minus the summed fired mask into V^th.
                    g_utmp = g_utmp + grad_u
                    gv -= float((grad_u * fired).sum())
                else:
                    # Hard reset detaches the fired branch.
                    g_utmp = g_utmp + np.where(fired, 0.0, grad_u)
            gv += float((gs * (beta * fired.astype(gs.dtype) - window)).sum())
            gleak += float((g_utmp * u_prev[t]).sum())
            grad_current[t] = g_utmp
            grad_u = leak_val * g_utmp
        return (
            grad_current.reshape(flat_shape),
            np.full(v_threshold.data.shape, gv, dtype=v_threshold.data.dtype)
            if v_threshold.requires_grad else None,
            np.full(leak.data.shape, gleak, dtype=leak.data.dtype)
            if leak.requires_grad else None,
        )

    return bwd


class SpikingNeuron(Module):
    """A layer of IF/LIF neurons sharing one threshold and leak.

    Parameters
    ----------
    v_threshold:
        Initial firing threshold ``V^th`` (after conversion this is
        ``alpha * mu`` for the layer).
    beta:
        Spike-amplitude scale from Eq. (8).  ``1.0`` recovers the plain
        IF neuron; the converter sets the per-layer optimum and can
        absorb it into downstream weights.
    leak:
        Membrane leak ``lambda``; ``1.0`` gives IF dynamics.
    trainable:
        Whether threshold and leak receive gradients during SGL.
    surrogate:
        Name of the surrogate gradient (default: the paper's boxcar).

    State
    -----
    ``membrane`` holds ``U(t)`` between calls; :meth:`reset_state`
    clears it (done automatically by the network at every new input).
    """

    def __init__(
        self,
        v_threshold: float = 1.0,
        beta: float = 1.0,
        leak: float = 1.0,
        trainable: bool = True,
        surrogate: str = "boxcar",
        initial_potential: float = 0.0,
        reset_mode: str = "soft",
    ) -> None:
        super().__init__()
        if v_threshold <= 0:
            raise ValueError("v_threshold must be positive")
        if beta <= 0:
            raise ValueError("beta must be positive")
        if not 0.0 <= leak <= 1.0:
            raise ValueError("leak must lie in [0, 1]")
        if reset_mode not in ("soft", "hard"):
            raise ValueError("reset_mode must be 'soft' or 'hard'")
        self.v_threshold = Parameter(np.array([float(v_threshold)]))
        self.leak = Parameter(np.array([float(leak)]))
        if not trainable:
            self.v_threshold.requires_grad = False
            self.leak.requires_grad = False
        self.beta = float(beta)
        # Non-zero initial membrane potential implements the bias shift
        # delta = V^th / 2T of Deng et al. [15] (a charge of V^th/2 at
        # t=0 shifts the average-rate staircase left by V^th/2T).
        self.initial_potential = float(initial_potential)
        # "soft" (reset-by-subtraction, Eq. 4) conserves residual charge
        # and is required for the rate-staircase equivalence the
        # conversion relies on; "hard" (reset-to-zero) discards it —
        # provided for comparison with the classic conversion
        # literature, where it is a known accuracy loss.
        self.reset_mode = reset_mode
        self.surrogate_name = surrogate
        self.surrogate = get_surrogate(surrogate)
        self.membrane: Optional[Tensor] = None
        # Fault-injection hook (see repro.faults): an optional sampler
        # mapping the unit shape to a boolean alive-mask, realised
        # lazily at the first forward and honoured by both execution
        # modes.  Dead units integrate and reset normally but never
        # transmit a spike (a broken axon, not a missing cell).
        self._unit_fault_fn = None
        self._unit_fault_mask: Optional[np.ndarray] = None
        # Spike statistics (populated when ``recording`` is on).
        self.recording = False
        self.spike_count = 0.0
        self.neuron_count = 0
        self.step_count = 0

    # ------------------------------------------------------------------
    @property
    def threshold(self) -> float:
        return float(self.v_threshold.data[0])

    @property
    def leak_value(self) -> float:
        return float(self.leak.data[0])

    def reset_state(self) -> None:
        # Temporal state only: an installed fault mask is a property of
        # the injection session, not of one input, and survives resets.
        self.membrane = None

    def set_unit_fault(self, sampler) -> None:
        """Install (or clear, with ``None``) a dead-unit mask sampler.

        ``sampler(unit_shape)`` must return a boolean array of that
        shape — ``True`` for units that still transmit.  It is invoked
        once, at the first forward pass that knows the unit shape, and
        the realised mask is cached for the rest of the session, so
        fused and stepwise execution silence the same units.
        """
        self._unit_fault_fn = sampler
        self._unit_fault_mask = None

    def _unit_alive_mask(self, unit_shape) -> Optional[np.ndarray]:
        if self._unit_fault_fn is None:
            return None
        mask = self._unit_fault_mask
        expected = (1,) + tuple(unit_shape)
        if mask is None or mask.shape != expected:
            mask = np.asarray(self._unit_fault_fn(tuple(unit_shape)))
            mask = mask.reshape(expected)
            self._unit_fault_mask = mask
        return mask

    def reset_spike_stats(self) -> None:
        self.spike_count = 0.0
        self.neuron_count = 0
        self.step_count = 0

    def forward(self, current: Tensor) -> Tensor:
        """Advance one time step with input current ``I(t)``."""
        if self.membrane is None:
            membrane = Tensor(
                np.full_like(current.data, self.initial_potential)
            )
        else:
            membrane = self.membrane
        u_temp = membrane * self.leak + current
        spikes = spike_function(u_temp, self.v_threshold, self.beta, self.surrogate)
        fired_mask = (spikes.data != 0.0).astype(current.data.dtype)
        if self.reset_mode == "soft":
            self.membrane = u_temp - self.v_threshold * Tensor(fired_mask)
        else:  # hard reset: zero the fired units, graph detached there
            from ..tensor import where

            self.membrane = where(
                fired_mask != 0.0, Tensor(np.zeros_like(u_temp.data)), u_temp
            )
        if self.recording:
            self.spike_count += float(fired_mask.sum())
            self.neuron_count = int(np.prod(current.data.shape[1:]))
            self.step_count += 1
        alive = self._unit_alive_mask(current.data.shape[1:])
        if alive is not None:
            spikes = _silence_units(spikes, alive)
        dispatch = active_dispatch()
        if dispatch is not None:
            # Spike trains are uniform-amplitude by construction; the
            # dispatcher can pack this exact array without re-deriving
            # the spike height.
            dispatch.offer_spikes(
                spikes.data, amplitude=self.beta * self.threshold
            )
        return spikes

    def forward_fused(self, current: Tensor, timesteps: int) -> Tensor:
        """Advance all ``timesteps`` steps over a time-folded batch.

        ``current`` packs the per-step currents time-major along the
        batch axis (``(T*N, ...)``; rows ``t*N..(t+1)*N`` are step ``t``).
        Equivalent to ``timesteps`` calls of :meth:`forward` on the
        unfolded frames — same spikes, same BPTT gradients — but the
        membrane recurrence runs as one vectorised scan.

        A non-``None`` ``membrane`` warm-starts the scan from the
        carried state (streaming windows keep membranes alive across
        forward calls).  The carried value enters as a constant:
        cross-window credit is truncated at the boundary, which matches
        the stepwise path's detached-membrane hand-off under streaming
        inference.
        """
        if self.membrane is None:
            initial = self.initial_potential
        else:
            initial = self.membrane.data
        spikes, final_membrane, fired_total = fused_spike_scan(
            current,
            self.v_threshold,
            self.leak,
            self.beta,
            self.surrogate,
            timesteps,
            reset_mode=self.reset_mode,
            initial_potential=initial,
        )
        # Expose the last-step membrane (detached) for post-hoc probes;
        # the in-graph recurrence lives inside the scan's backward.
        self.membrane = Tensor(final_membrane, dtype=final_membrane.dtype)
        if self.recording:
            self.spike_count += fired_total
            self.neuron_count = int(np.prod(current.data.shape[1:]))
            self.step_count += timesteps
        # The dead-unit mask is time-independent, so one broadcast over
        # the folded (T*N, ...) batch silences the same units the
        # stepwise loop silences at every step.
        alive = self._unit_alive_mask(current.data.shape[1:])
        if alive is not None:
            spikes = _silence_units(spikes, alive)
        dispatch = active_dispatch()
        if dispatch is not None:
            # fired_total is this call's exact event count unless dead
            # units were silenced after the scan (then let the
            # dispatcher recount).
            dispatch.offer_spikes(
                spikes.data,
                nnz=None if alive is not None else int(fired_total),
                amplitude=self.beta * self.threshold,
            )
        return spikes

    def extra_repr(self) -> str:
        return (
            f"v_th={self.threshold:.4f}, beta={self.beta:.4f}, "
            f"leak={self.leak_value:.4f}, surrogate={self.surrogate_name}"
        )


class IFNeuron(SpikingNeuron):
    """Integrate-and-Fire neuron (``leak = 1``), the conversion target."""

    def __init__(
        self,
        v_threshold: float = 1.0,
        beta: float = 1.0,
        trainable: bool = True,
        surrogate: str = "boxcar",
        initial_potential: float = 0.0,
    ) -> None:
        super().__init__(
            v_threshold=v_threshold,
            beta=beta,
            leak=1.0,
            trainable=trainable,
            surrogate=surrogate,
            initial_potential=initial_potential,
        )


class LIFNeuron(SpikingNeuron):
    """Leaky Integrate-and-Fire neuron with trainable leak."""
