"""Surrogate gradients for the discontinuous spike function.

During SGL fine-tuning the Heaviside spike nonlinearity is given a
smooth pseudo-derivative.  The paper's choice (Section III-B) is a
boxcar window:

    d s' / d s  ~=  1   if 0 <= u <= 2 * V^th
                    0   otherwise

i.e. a pass-through of width ``2 V^th`` centred on the threshold (with
``V^th = alpha * mu`` after conversion).  Alternative published
surrogates are provided for ablations.

Every surrogate is a function ``g(u, v_th) -> ndarray`` evaluated on the
pre-reset membrane potential ``u``; the returned array multiplies the
upstream gradient.
"""

from __future__ import annotations

from typing import Callable, Dict

import numpy as np

SurrogateFn = Callable[[np.ndarray, float], np.ndarray]


def boxcar(u: np.ndarray, v_th: float) -> np.ndarray:
    """The paper's window: 1 on ``[0, 2 v_th]``, else 0."""
    return ((u >= 0.0) & (u <= 2.0 * v_th)).astype(u.dtype)


def triangle(u: np.ndarray, v_th: float) -> np.ndarray:
    """Piecewise-linear hat centred at the threshold (Esser et al.)."""
    return np.maximum(0.0, 1.0 - np.abs(u - v_th) / max(v_th, 1e-12))


def fast_sigmoid(u: np.ndarray, v_th: float, slope: float = 5.0) -> np.ndarray:
    """Derivative of the fast sigmoid (Zenke & Ganguli 2018)."""
    scaled = slope * (u - v_th) / max(v_th, 1e-12)
    return 1.0 / (1.0 + np.abs(scaled)) ** 2


def arctan_surrogate(u: np.ndarray, v_th: float, alpha: float = 2.0) -> np.ndarray:
    """Derivative of a scaled arctan (Fang et al. 2021)."""
    scaled = np.pi * alpha * (u - v_th) / max(v_th, 1e-12)
    return alpha / (1.0 + scaled * scaled)


_SURROGATES: Dict[str, SurrogateFn] = {
    "boxcar": boxcar,
    "triangle": triangle,
    "fast_sigmoid": fast_sigmoid,
    "arctan": arctan_surrogate,
}


def get_surrogate(name: str) -> SurrogateFn:
    """Look up a surrogate gradient by name."""
    if name not in _SURROGATES:
        raise KeyError(f"unknown surrogate '{name}'; available: {sorted(_SURROGATES)}")
    return _SURROGATES[name]


def available_surrogates() -> list:
    return sorted(_SURROGATES)
