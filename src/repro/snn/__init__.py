"""Spiking substrate: neurons, surrogate gradients, encoders, networks."""

from .analysis import (
    first_spike_latency,
    layer_summary,
    record_spike_raster,
    spikes_per_step,
    synchrony_index,
    temporal_sparsity,
)
from .encoding import (
    DirectEncoder,
    Encoder,
    PassthroughEncoder,
    PoissonEncoder,
    TTFSEncoder,
)
from .event_driven import (
    EventCounts,
    EventDrivenNetwork,
    conv_fanout_map,
    sparse_conv2d,
    sparse_linear,
)
from .neurons import (
    IFNeuron,
    LIFNeuron,
    SpikingNeuron,
    fused_spike_scan,
    spike_function,
)
from .pooling import SpikingMaxPool
from .network import (
    SpikingModule,
    SpikingNetwork,
    SpikingResidualBlock,
    SpikingSequential,
    StepWrapper,
    TemporalDropout,
    apply_fused,
    fold_time,
    tile_time,
    unfold_time,
)
from .stdp import STDPConfig, STDPLearner, run_stdp_session
from .surrogate import (
    arctan_surrogate,
    available_surrogates,
    boxcar,
    fast_sigmoid,
    get_surrogate,
    triangle,
)

__all__ = [
    "DirectEncoder",
    "first_spike_latency",
    "layer_summary",
    "record_spike_raster",
    "spikes_per_step",
    "synchrony_index",
    "temporal_sparsity",
    "Encoder",
    "EventCounts",
    "EventDrivenNetwork",
    "IFNeuron",
    "PassthroughEncoder",
    "conv_fanout_map",
    "sparse_conv2d",
    "sparse_linear",
    "LIFNeuron",
    "PoissonEncoder",
    "STDPConfig",
    "STDPLearner",
    "run_stdp_session",
    "SpikingMaxPool",
    "SpikingModule",
    "SpikingNetwork",
    "SpikingNeuron",
    "SpikingResidualBlock",
    "SpikingSequential",
    "StepWrapper",
    "TTFSEncoder",
    "TemporalDropout",
    "apply_fused",
    "arctan_surrogate",
    "available_surrogates",
    "boxcar",
    "fast_sigmoid",
    "fold_time",
    "fused_spike_scan",
    "get_surrogate",
    "spike_function",
    "tile_time",
    "unfold_time",
    "triangle",
]
