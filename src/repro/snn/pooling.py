"""Spiking max pooling with rate-based gating (Rueckauer et al. 2017).

Naive per-step max pooling over binary spike trains badly overestimates
the pooled firing rate: for a 2x2 window of independent spike trains of
rate ``r`` the per-step max fires at ``1 - (1 - r)^4 ~ 4r``, not ``r``.
The converted network then sees up to 4x inflated activations after
every pooling stage and the conversion error never vanishes, however
large T is.

The standard fix — used by SNN-Toolbox and the conversion literature
this paper builds on — is a *gating* pool: each window tracks the
accumulated spike count of its inputs and, at every step, transmits
only the spikes of the input with the highest running rate.  The output
stays binary (the paper's requirement for AC-only hidden layers) and
its average converges to the maximum of the input averages, matching
the DNN's max pooling.

Gradient: routed one-hot to the selected window element, like ordinary
max pooling.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..tensor import Tensor
from .network import SpikingModule


class SpikingMaxPool(SpikingModule):
    """Rate-gated max pooling over non-overlapping windows."""

    def __init__(self, kernel_size: int) -> None:
        super().__init__()
        if kernel_size <= 0:
            raise ValueError("kernel_size must be positive")
        self.kernel_size = kernel_size
        self._counts: Optional[np.ndarray] = None

    def reset_state(self) -> None:
        self._counts = None
        super().reset_state()

    def forward(self, x: Tensor) -> Tensor:
        n, c, h, w = x.data.shape
        k = self.kernel_size
        if h % k or w % k:
            raise ValueError(f"spatial size {h}x{w} not divisible by pool {k}")
        out_h, out_w = h // k, w // k
        # (N, C, out_h, out_w, k*k) window view of the current frame.
        frames = (
            x.data.reshape(n, c, out_h, k, out_w, k)
            .transpose(0, 1, 2, 4, 3, 5)
            .reshape(n, c, out_h, out_w, k * k)
        )
        if self._counts is None or self._counts.shape != frames.shape:
            self._counts = np.zeros_like(frames)
        self._counts += frames
        winners = self._counts.argmax(axis=-1)
        out = np.take_along_axis(frames, winners[..., None], axis=-1)[..., 0]

        def bwd(g):
            # One-hot gate materialised lazily: only backward needs it.
            gate = np.eye(k * k, dtype=g.dtype)[winners]
            g_win = g[..., None] * gate
            gx = (
                g_win.reshape(n, c, out_h, out_w, k, k)
                .transpose(0, 1, 2, 4, 3, 5)
                .reshape(n, c, h, w)
            )
            return (gx,)

        return Tensor.from_op(out, (x,), bwd, "spiking_max_pool")

    def forward_fused(self, x: Tensor, timesteps: int) -> Tensor:
        """Scan the rate-gating dynamics over a time-folded batch.

        The running window counts at step ``t`` are the cumulative sum
        of the window views over the leading time blocks — computed in
        the same left-to-right order as the stepwise ``+=``, so winners
        (and argmax tie-breaks) are bit-identical.
        """
        total, c, h, w = x.data.shape
        if timesteps <= 0 or total % timesteps:
            raise ValueError(
                f"time-folded batch of {total} rows is not divisible by "
                f"timesteps={timesteps}"
            )
        n = total // timesteps
        k = self.kernel_size
        if h % k or w % k:
            raise ValueError(f"spatial size {h}x{w} not divisible by pool {k}")
        out_h, out_w = h // k, w // k
        # (T, N, C, out_h, out_w, k*k) window views, time-major.
        frames = (
            x.data.reshape(timesteps, n, c, out_h, k, out_w, k)
            .transpose(0, 1, 2, 3, 5, 4, 6)
            .reshape(timesteps, n, c, out_h, out_w, k * k)
        )
        counts = np.cumsum(frames, axis=0)
        if self._counts is not None and self._counts.shape == counts.shape[1:]:
            counts += self._counts
        winners = counts.argmax(axis=-1)
        out = (
            np.take_along_axis(frames, winners[..., None], axis=-1)[..., 0]
            .reshape(total, c, out_h, out_w)
        )
        self._counts = counts[-1].copy()

        def bwd(g):
            # One-hot gate materialised lazily: only backward needs it.
            gate = np.eye(k * k, dtype=g.dtype)[winners]
            g_win = g.reshape(timesteps, n, c, out_h, out_w)[..., None] * gate
            gx = (
                g_win.reshape(timesteps, n, c, out_h, out_w, k, k)
                .transpose(0, 1, 2, 3, 5, 4, 6)
                .reshape(total, c, h, w)
            )
            return (gx,)

        return Tensor.from_op(out, (x,), bwd, "spiking_max_pool_fused")

    def extra_repr(self) -> str:
        return f"kernel_size={self.kernel_size}"
