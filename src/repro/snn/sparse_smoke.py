"""Sparse-dispatch end-to-end smoke check (``make sparse-smoke``).

A fast, deterministic pass over the event-driven sparse execution path:

1. **crossover calibration** — calibrating twice with an injected
   deterministic ``time_fn`` must produce bit-identical artefacts
   (fixed seed + environment fingerprint ⇒ reproducible thresholds);
   a real timed micro-calibration is then written into the run
   directory and loaded back through :class:`CrossoverTable`;
2. **sparse-path pipeline** — a converted tiny VGG on low-activity
   inputs must route a majority of its weight-layer forwards through
   the sparse gather kernels while matching the dense engine's logits,
   and the forced-sparse int8 path must stay within the quantization
   grid's tolerance of the float path;
3. **energy gauges** — under an observed run,
   :func:`record_energy_profile` must publish ``energy.*`` gauges with
   ``energy.measured_counts == 1`` (the dispatcher's exact accumulate
   counts replacing the rate-based estimates) and
   :func:`record_dispatch_profile` must publish per-layer
   ``dispatch.*`` gauges; the rendered report must carry the sparse
   dispatch table and ``dashboard --once`` must render
   deterministically;
4. **identical-seed self-diff** — ``repro.obs.diff`` over the two
   observed run directories must report zero regressions.

Exits non-zero with a diagnostic on the first failed check.
"""

from __future__ import annotations

import argparse
import contextlib
import io
import os

import numpy as np

#: Micro-calibration set: one conv + one linear shape from the tiny-VGG
#: bench network, swept over two densities — enough to exercise the
#: timing loop and artefact round-trip in a couple of seconds.
SMOKE_SIGNATURES = (
    "conv:cin=8,cout=16,k=3,s=1,p=1,h=4,w=4",
    "linear:in=64,out=32",
)
SMOKE_DENSITIES = (0.005, 0.05)


def _fail(message: str) -> int:
    print(f"SPARSE SMOKE FAILED: {message}")
    return 1


def _converted_tiny_vgg():
    from ..conversion import ConversionConfig, convert_dnn_to_snn
    from ..data import DataLoader
    from ..models import vgg11

    rng = np.random.default_rng(0)
    model = vgg11(
        num_classes=10, image_size=8, width_multiplier=0.125,
        rng=np.random.default_rng(1),
    )
    loader = DataLoader(rng.random((16, 3, 8, 8)), rng.integers(0, 10, 16), 16)
    snn = convert_dnn_to_snn(model, loader, ConversionConfig(timesteps=2)).snn
    snn.eval()
    images = rng.random((16, 3, 8, 8))
    labels = rng.integers(0, 10, 16)
    return snn, images, labels


def _fake_timer():
    """Deterministic stand-in for the wall clock: a fixed pseudo-stream."""
    state = {"n": 0}

    def time_fn(fn):
        fn()  # still execute, so shape/kernels errors surface
        state["n"] += 1
        # Any fixed sequence works; vary it so crossovers are non-trivial.
        return 0.001 * ((state["n"] * 7919) % 97 + 1)

    return time_fn


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.snn.sparse_smoke",
        description="Deterministic sparse-dispatch pipeline check.",
    )
    parser.add_argument("--run-dir",
                        default=os.path.join("results", "sparse_smoke"))
    args = parser.parse_args(argv)

    from ..bench.crossover import calibrate_crossover, write_artifact
    from ..obs import load_run, observe, render_report
    from ..obs.dashboard import main as dashboard_main
    from ..obs.diff import diff_run_dirs
    from ..obs.instruments import record_dispatch_profile, record_energy_profile
    from ..tensor import no_grad
    from .dispatch import CROSSOVER_SCHEMA, CrossoverTable

    # --- 1. calibration: deterministic under a fixed time_fn ----------
    artefacts = [
        calibrate_crossover(
            signatures=SMOKE_SIGNATURES, densities=SMOKE_DENSITIES,
            batch=8, seed=0, time_fn=_fake_timer(),
        )
        for _ in range(2)
    ]
    if artefacts[0] != artefacts[1]:
        return _fail("fixed-seed calibration with a deterministic time_fn "
                     "produced differing artefacts")
    if artefacts[0]["schema"] != CROSSOVER_SCHEMA:
        return _fail(f"calibration wrote schema {artefacts[0]['schema']!r}, "
                     f"expected {CROSSOVER_SCHEMA!r}")

    os.makedirs(args.run_dir, exist_ok=True)
    micro_path = os.path.join(args.run_dir, "CROSSOVER.json")
    write_artifact(
        calibrate_crossover(
            signatures=SMOKE_SIGNATURES, densities=SMOKE_DENSITIES,
            batch=8, repeats=2, seed=0,
        ),
        micro_path,
    )
    table = CrossoverTable.load(micro_path)
    missing = [s for s in SMOKE_SIGNATURES if s not in table.entries]
    if missing:
        return _fail(f"calibration artefact is missing entries {missing}")

    # The committed repo-root artefact routes the pipeline when present;
    # the micro artefact keeps the smoke self-contained when not.
    root_artifact = os.path.join(os.getcwd(), "CROSSOVER.json")
    crossover = root_artifact if os.path.exists(root_artifact) else micro_path

    # --- 2. sparse-path pipeline + 3. observability, twice ------------
    run_dir_a = args.run_dir
    run_dir_b = f"{args.run_dir}_b"
    sparse_share = 0.0
    for run_dir in (run_dir_a, run_dir_b):
        for stale in ("trace.jsonl", "events.jsonl", "metrics.json"):
            path = os.path.join(run_dir, stale)
            if os.path.exists(path):
                os.remove(path)
        snn, images, labels = _converted_tiny_vgg()
        quiet = images * 0.25  # low-activity regime: below the crossovers
        with no_grad():
            dense_logits = snn(quiet).data.copy()
        dispatch = snn.enable_sparse_dispatch(crossover=crossover,
                                              count_ops=True)
        with no_grad():
            routed_logits = snn(quiet).data.copy()
        if not np.allclose(routed_logits, dense_logits, atol=1e-9):
            return _fail("sparse-routed logits diverge from the dense engine")
        stats = dispatch.layer_stats()
        sparse_runs = sum(st.sparse_runs for st in stats)
        calls = sum(st.calls for st in stats)
        if sparse_runs * 2 < calls:
            return _fail(f"sparse path not exercised: only {sparse_runs} of "
                         f"{calls} layer-forwards routed sparse")
        sparse_share = sparse_runs / calls

        # Forced-sparse int8: every layer through the quantized gather.
        snn.enable_sparse_dispatch(
            int8=True, defaults={"conv": 1.1, "linear": 1.1},
        )
        with no_grad():
            int8_logits = snn(images).data
            snn.disable_sparse_dispatch()
            float_logits = snn(images).data
        if not np.allclose(int8_logits, float_logits, atol=0.05, rtol=0.05):
            return _fail("int8 sparse logits drifted past the quantization "
                         "tolerance")

        # Observed run: measured energy counts + dispatch telemetry.
        dispatch = snn.enable_sparse_dispatch(crossover=crossover,
                                              count_ops=True)
        with observe(run_dir, smoke=True, sparse=True):
            summary = record_energy_profile(
                snn, [(quiet, labels)], (3, 8, 8),
            )
            record_dispatch_profile(snn)
        if not summary.get("measured_counts"):
            return _fail("energy profile did not use the dispatcher's "
                         "measured accumulate counts")

        run = load_run(run_dir)
        gauges = run.metrics.get("gauges", {})
        energy_gauges = [g for g in gauges if g.startswith("energy.")]
        if not energy_gauges:
            return _fail(f"no energy.* gauges recorded in {run_dir}")
        measured_flag = gauges.get("energy.measured_counts")
        if not measured_flag:
            return _fail("energy.measured_counts gauge is absent or zero")
        dispatch_gauges = [g for g in gauges if g.startswith("dispatch.")]
        if not dispatch_gauges:
            return _fail(f"no dispatch.* gauges recorded in {run_dir}")

    # Report carries the sparse dispatch table.
    report = render_report(load_run(run_dir_a))
    if "Sparse dispatch" not in report:
        return _fail("rendered report is missing the sparse dispatch section")

    # --- 4. identical-seed self-diff must be clean --------------------
    diff = diff_run_dirs(run_dir_a, run_dir_b)
    if not diff.ok:
        print(diff.render())
        return _fail(f"identical-seed self-diff found "
                     f"{len(diff.regressions)} regression(s)")

    # Dashboard snapshot mode stays a pure function of the run dir.
    frames = []
    for _ in range(2):
        buffer = io.StringIO()
        with contextlib.redirect_stdout(buffer):
            code = dashboard_main([run_dir_a, "--once"])
        if code != 0:
            return _fail(f"dashboard --once exited {code}")
        frames.append(buffer.getvalue())
    if frames[0] != frames[1]:
        return _fail("dashboard --once rendered differing frames")

    print(
        f"sparse smoke ok: deterministic calibration "
        f"({len(table.entries)} shapes, {micro_path}), "
        f"{sparse_share:.0%} of layer-forwards sparse-routed "
        f"(logits match dense), int8 within tolerance, "
        f"measured energy counts + {len(dispatch_gauges)} dispatch gauges, "
        f"self-diff clean over {len(diff.deltas)} aligned series"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
