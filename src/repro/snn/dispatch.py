"""Activity-adaptive dense <-> sparse dispatch for weight layers.

The dense engine pays full GEMM cost regardless of how few units fire;
the sparse gather kernels (:mod:`repro.tensor.sparse`) win only below a
per-layer-shape break-even density.  :class:`SparseDispatch` measures
each weight layer's input spike density per forward and routes the call
to whichever path is cheaper, using thresholds from a calibrated
crossover artefact (``python -m repro.bench crossover``) with
conservative per-kind defaults as fallback.

Wiring: :class:`~repro.snn.network.SpikingNetwork` installs its
dispatcher into a module-global context for the duration of an eligible
forward pass (eval mode, gradients disabled), and every
``StepWrapper`` consults :func:`active_dispatch` before running its
inner module.  Spiking neurons *offer* their freshly produced spike
tensors to the active dispatcher (array identity plus exact event count
and uniform amplitude), so the dispatcher can decide and pack without
re-scanning the dense frame.  Training and autograd-enabled passes
never see a context and keep the dense autograd path bit-for-bit.

The dispatcher also keeps exact accumulate accounting (one accumulate
per spike event per reachable output connection — the same semantics
:mod:`repro.snn.event_driven` validates), which :func:`repro.obs.
instruments.record_energy_profile` consumes to replace rate-based
energy estimates with measured counts.
"""

from __future__ import annotations

import json
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from ..nn.conv import Conv2d
from ..nn.linear import Linear
from ..tensor.sparse import (
    pack_conv_weight,
    pack_spikes,
    sparse_conv2d_gather,
    sparse_linear_gather,
)

#: Schema tag of the persisted crossover artefact.
CROSSOVER_SCHEMA = "repro.bench.crossover/v1"

#: Conservative break-even densities when no calibration entry exists.
#: Measured on the reference host the gather kernels only beat BLAS
#: well below 10% activity; these defaults err toward the dense path.
DEFAULT_THRESHOLDS = {"conv": 0.01, "linear": 0.05}


def layer_signature(layer, unit_shape) -> str:
    """Stable shape key for crossover lookup.

    Linear layers cross over on (in, out) alone; convolutions also on
    their spatial geometry, which fixes the event-to-output fan-out.
    """
    if isinstance(layer, Linear):
        return f"linear:in={layer.in_features},out={layer.out_features}"
    if isinstance(layer, Conv2d):
        h, w = unit_shape[-2], unit_shape[-1]
        return (
            f"conv:cin={layer.in_channels},cout={layer.out_channels},"
            f"k={layer.kernel_size},s={layer.stride},p={layer.padding},"
            f"h={h},w={w}"
        )
    raise TypeError(f"no sparse dispatch for {type(layer).__name__}")


class CrossoverTable:
    """Per-layer-shape break-even densities with per-kind defaults."""

    def __init__(
        self,
        entries: Optional[Dict[str, float]] = None,
        defaults: Optional[Dict[str, float]] = None,
        meta: Optional[dict] = None,
    ) -> None:
        self.entries = dict(entries or {})
        self.defaults = dict(DEFAULT_THRESHOLDS)
        if defaults:
            self.defaults.update(defaults)
        self.meta = dict(meta or {})

    def threshold(self, signature: str) -> float:
        if signature in self.entries:
            return float(self.entries[signature])
        kind = signature.split(":", 1)[0]
        return float(self.defaults.get(kind, 0.0))

    # ------------------------------------------------------------------
    @classmethod
    def from_artifact(cls, payload: dict) -> "CrossoverTable":
        schema = payload.get("schema")
        if schema != CROSSOVER_SCHEMA:
            raise ValueError(
                f"unsupported crossover artefact schema {schema!r} "
                f"(expected {CROSSOVER_SCHEMA!r})"
            )
        entries = {
            e["signature"]: float(e["crossover_density"])
            for e in payload.get("entries", [])
        }
        defaults = payload.get("defaults") or {}
        meta = {
            k: payload.get(k)
            for k in ("environment", "seed", "densities", "batch", "repeats")
            if k in payload
        }
        return cls(entries=entries, defaults=defaults, meta=meta)

    @classmethod
    def load(cls, path) -> "CrossoverTable":
        with open(path, "r", encoding="utf-8") as fh:
            return cls.from_artifact(json.load(fh))


@dataclass
class LayerDispatchStats:
    """Per-layer dispatch telemetry (exact event accounting included)."""

    signature: str
    kind: str
    threshold: float
    dense_runs: int = 0
    sparse_runs: int = 0
    events: float = 0.0
    accumulates: float = 0.0
    #: Summed input batch sizes over all calls.  Distinguishes a layer
    #: the fused engine ran once on the (T*N)-folded batch from one the
    #: direct-encoding prefix ran once on N analog frames — both have
    #: ``calls == 1`` but the hardware pays T presentations either way,
    #: so energy accounting rescales by ``timesteps * N / batch_sum``.
    batch_sum: float = 0.0
    last_density: float = 0.0
    density_sum: float = 0.0
    unit_shape: tuple = ()

    @property
    def calls(self) -> int:
        return self.dense_runs + self.sparse_runs

    @property
    def mean_density(self) -> float:
        return self.density_sum / self.calls if self.calls else 0.0

    @property
    def sparse_fraction(self) -> float:
        return self.sparse_runs / self.calls if self.calls else 0.0

    def as_dict(self) -> dict:
        return {
            "signature": self.signature,
            "kind": self.kind,
            "threshold": self.threshold,
            "dense_runs": self.dense_runs,
            "sparse_runs": self.sparse_runs,
            "events": self.events,
            "accumulates": self.accumulates,
            "last_density": self.last_density,
            "mean_density": self.mean_density,
            "sparse_fraction": self.sparse_fraction,
        }


class _PackedLayer:
    """Cached kernel-ready weights for one layer (float and/or int8)."""

    __slots__ = ("packed", "qdata", "qscale", "fanout", "fanout_sum")

    def __init__(self) -> None:
        self.packed = None
        self.qdata = None
        self.qscale = None
        self.fanout: Dict[tuple, np.ndarray] = {}
        self.fanout_sum: Dict[tuple, float] = {}


class SparseDispatch:
    """Routes eligible weight layers between dense GEMM and sparse gather.

    Parameters
    ----------
    crossover:
        ``None`` (defaults only), a path to a crossover artefact, or a
        :class:`CrossoverTable`.
    int8:
        Quantize weights to int8 per layer (symmetric, scale outside the
        crossbar) and accumulate sparse gathers in int32.
    count_ops:
        Keep exact accumulate counts on *every* forward — also on dense
        runs, where the event-driven op count is what the hardware would
        pay regardless of which simulator path computed the values.
        Off by default: counting costs a few vectorised passes per layer
        per step, so it is opt-in for energy-profiling runs
        (:func:`repro.obs.instruments.record_energy_profile`).
    """

    def __init__(
        self,
        crossover=None,
        int8: bool = False,
        count_ops: bool = False,
        defaults: Optional[Dict[str, float]] = None,
    ) -> None:
        if crossover is None:
            table = CrossoverTable(defaults=defaults)
        elif isinstance(crossover, CrossoverTable):
            table = crossover
            if defaults:
                table.defaults.update(defaults)
        else:
            table = CrossoverTable.load(crossover)
            if defaults:
                table.defaults.update(defaults)
        self.table = table
        self.int8 = bool(int8)
        self.count_ops = bool(count_ops)
        self.stats: Dict[int, LayerDispatchStats] = {}
        self._order: List[int] = []
        self._packed: Dict[int, _PackedLayer] = {}
        # Latest spike tensor offered by a neuron: (id, ref, nnz, amp).
        self._offer = None

    # ------------------------------------------------------------------
    # Neuron-side spike emission
    # ------------------------------------------------------------------
    def offer_spikes(self, data, nnz=None, amplitude=None) -> None:
        """Register a freshly emitted spike tensor's metadata.

        Keyed by array identity: the very next weight layer that
        receives this exact array can reuse the event count and uniform
        amplitude without re-scanning it.  Holding the reference keeps
        the id stable until the next offer replaces it.
        """
        self._offer = (id(data), data, nnz, amplitude)

    def _claim(self, data):
        offer = self._offer
        if offer is not None and offer[0] == id(data) and offer[1] is data:
            return offer[2], offer[3]
        return None

    # ------------------------------------------------------------------
    # Weight / fanout caches
    # ------------------------------------------------------------------
    def invalidate_cache(self) -> None:
        """Drop packed weights (call after in-place weight mutation)."""
        self._packed.clear()

    def reset_stats(self) -> None:
        for key in self._order:
            st = self.stats[key]
            st.dense_runs = st.sparse_runs = 0
            st.events = st.accumulates = st.batch_sum = 0.0
            st.last_density = st.density_sum = 0.0

    def layer_stats(self) -> List[LayerDispatchStats]:
        """Stats in first-use (execution) order."""
        return [self.stats[key] for key in self._order]

    def _packed_for(self, layer) -> _PackedLayer:
        key = id(layer)
        pl = self._packed.get(key)
        if pl is None:
            pl = _PackedLayer()
            weight = layer.weight.data
            if self.int8:
                from ..hw.quantization import quantize_int8

                qw = quantize_int8(weight)
                if isinstance(layer, Conv2d):
                    pl.qdata = pack_conv_weight(qw.q)
                else:
                    pl.qdata = np.ascontiguousarray(qw.q)
                pl.qscale = qw.scale
            if isinstance(layer, Conv2d):
                pl.packed = pack_conv_weight(weight)
            self._packed[key] = pl
        return pl

    def _fanout_for(self, pl: _PackedLayer, layer: Conv2d, unit_shape):
        key = tuple(unit_shape)
        fanout = pl.fanout.get(key)
        if fanout is None:
            from .event_driven import conv_fanout_map

            fanout = conv_fanout_map(key, layer).reshape(-1)
            pl.fanout[key] = fanout
            pl.fanout_sum[key] = float(fanout.sum())
        return fanout, pl.fanout_sum[key]

    # ------------------------------------------------------------------
    def _stats_for(self, layer, kind, unit_shape) -> LayerDispatchStats:
        key = id(layer)
        st = self.stats.get(key)
        if st is None or st.unit_shape != tuple(unit_shape):
            signature = layer_signature(layer, unit_shape)
            st = LayerDispatchStats(
                signature=signature,
                kind=kind,
                threshold=self.table.threshold(signature),
                unit_shape=tuple(unit_shape),
            )
            if key not in self.stats:
                self._order.append(key)
            self.stats[key] = st
        return st

    def maybe_run(self, layer, x):
        """Sparse-path the layer if profitable; ``None`` keeps it dense.

        Either way the forward is recorded (density, path, exact
        accumulates) in this layer's :class:`LayerDispatchStats`.
        """
        if isinstance(layer, Linear):
            kind = "linear"
        elif isinstance(layer, Conv2d):
            kind = "conv"
        else:
            return None
        data = x.data
        if kind == "conv" and data.ndim != 4:
            return None
        st = self._stats_for(layer, kind, data.shape[1:])
        claimed = self._claim(data)
        if claimed is not None:
            nnz, amplitude = claimed
        else:
            nnz = amplitude = None
        counts = None  # per-unit event counts, shared by nnz + op count
        if nnz is None:
            if self.count_ops and kind == "conv":
                counts = np.count_nonzero(
                    data.reshape(data.shape[0], -1), axis=0
                )
                nnz = int(counts.sum())
            else:
                nnz = int(np.count_nonzero(data))
        density = nnz / data.size if data.size else 0.0
        st.last_density = density
        st.density_sum += density
        st.events += nnz
        st.batch_sum += data.shape[0]
        sparse = density <= st.threshold
        pl = self._packed_for(layer) if (sparse or self.count_ops) else None
        if self.count_ops:
            st.accumulates += self._exact_accumulates(
                layer, kind, data, nnz, amplitude, counts, pl
            )
        if not sparse:
            st.dense_runs += 1
            return None
        st.sparse_runs += 1
        sp = pack_spikes(data, amplitude=amplitude)
        bias = layer.bias.data if layer.bias is not None else None
        if kind == "linear":
            out = sparse_linear_gather(
                sp,
                weight=layer.weight.data,
                bias=bias,
                qweight=pl.qdata,
                qscale=pl.qscale,
            )
        else:
            out = sparse_conv2d_gather(
                sp,
                weight=layer.weight.data,
                stride=layer.stride,
                padding=layer.padding,
                bias=bias,
                packed=pl.packed,
                qpacked=pl.qdata,
                qscale=pl.qscale,
            )
        from ..tensor import Tensor

        return Tensor(out)

    def _exact_accumulates(self, layer, kind, data, nnz, amplitude, counts, pl):
        """Event-driven op count for this forward (path-independent).

        Conv counts use a column-count dot: ``sum_e fanout[col(e)]`` ==
        (per-unit event counts) . fanout — exactly the event-extraction
        result, but fully vectorised so the dense path stays cheap.
        """
        if kind == "linear":
            return float(nnz) * layer.out_features
        fanout, fanout_sum = self._fanout_for(pl, layer, data.shape[1:])
        if nnz == data.size:
            # Dense (analog) input: every unit fires — no scan needed.
            return fanout_sum * data.shape[0]
        if nnz == 0:
            return 0.0
        if counts is None:
            flat = data.reshape(data.shape[0], -1)
            if amplitude:
                # Claimed uniform-amplitude spike frame: the column sum
                # over {0, amp} values IS amp * per-unit event counts.
                # The true count is integral — rint removes the division
                # round-off so counts stay exact.
                return float(
                    np.rint(flat.sum(axis=0).dot(fanout) / amplitude)
                )
            counts = np.count_nonzero(flat, axis=0)
        return float(counts.dot(fanout))


# ----------------------------------------------------------------------
# Module-global dispatch context
# ----------------------------------------------------------------------
#: The active dispatcher, installed by SpikingNetwork.forward for the
#: duration of an eligible inference pass.  A plain module global (same
#: pattern as the layer probe): neurons and StepWrappers read it on
#: every call, and ``None`` keeps them on the dense fast path.
_ACTIVE_DISPATCH: Optional[SparseDispatch] = None


def active_dispatch() -> Optional[SparseDispatch]:
    return _ACTIVE_DISPATCH


@contextmanager
def dispatch_context(dispatch: Optional[SparseDispatch]):
    """Install ``dispatch`` as the active dispatcher within the block."""
    global _ACTIVE_DISPATCH
    previous = _ACTIVE_DISPATCH
    _ACTIVE_DISPATCH = dispatch
    try:
        yield dispatch
    finally:
        _ACTIVE_DISPATCH = previous
