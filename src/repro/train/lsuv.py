"""Data-driven layer-sequential weight rescaling (LSUV-style).

The paper trains deep BN-free VGG nets; without BatchNorm, deep plain
stacks of clipped activations are notoriously hard to start (the signal
variance collapses or explodes with depth).  LSUV (Mishkin & Matas
2016) fixes this by rescaling each weight layer so its *output* has
unit variance on real data — a per-layer multiplicative factor that,
like BN folding, is absorbed into the weights and therefore fully
compatible with the bias-free SNN conversion.

``lsuv_init`` walks the weight layers in forward order; for each it
runs a forward pass, measures the layer's output standard deviation on
a calibration batch and divides the weights by it (a few iterations
until the std is within tolerance).
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..nn import Conv2d, Linear, Module
from ..tensor import Tensor, no_grad


def scale_residual_branches(model: Module, factor: float = 0.1) -> int:
    """Fixup-style damping of residual branches (BN-free ResNets).

    Multiplies the second convolution of every
    :class:`~repro.models.resnet.BasicBlock` by ``factor`` so each block
    starts close to identity.  Without BatchNorm the variance of a deep
    residual stack otherwise grows with depth and training stalls.
    Like LSUV, this is a purely multiplicative change absorbed into the
    weights, so it is fully compatible with the SNN conversion.

    Returns the number of blocks scaled (0 for non-residual models).
    """
    from ..models.resnet import BasicBlock

    scaled = 0
    for module in model.modules():
        if isinstance(module, BasicBlock):
            module.conv2.weight.data *= factor
            scaled += 1
    return scaled


@no_grad()
def lsuv_init(
    model: Module,
    images: np.ndarray,
    target_std: float = 1.0,
    tolerance: float = 0.05,
    max_iterations: int = 4,
    min_std: float = 1e-8,
) -> List[float]:
    """Rescale every Conv2d/Linear so its output std hits ``target_std``.

    Parameters
    ----------
    model:
        The freshly-initialised network (modified in place).
    images:
        A representative (normalised) input batch.
    target_std:
        Desired per-layer output standard deviation.
    tolerance:
        Relative deviation at which a layer is considered converged.
    max_iterations:
        Forward/rescale rounds per layer.

    Returns the final output std of each weight layer (forward order).
    """
    weight_layers = [
        m for m in model.modules() if isinstance(m, (Conv2d, Linear))
    ]
    if not weight_layers:
        raise ValueError("model has no weight layers")
    batch = Tensor(np.asarray(images))
    was_training = model.training
    model.eval()

    captured: dict = {}

    def patch(layer: Module):
        original = layer.forward

        def capturing(x, _layer=layer, _orig=original):
            out = _orig(x)
            captured[id(_layer)] = float(out.data.std())
            return out

        object.__setattr__(layer, "forward", capturing)
        return original

    originals = [(layer, patch(layer)) for layer in weight_layers]
    final_stds: List[float] = []
    try:
        for layer in weight_layers:
            for _ in range(max_iterations):
                captured.clear()
                model(batch)
                std = captured[id(layer)]
                if std < min_std:
                    break  # dead layer; leave weights untouched
                if abs(std - target_std) <= tolerance * target_std:
                    break
                layer.weight.data /= std / target_std
            captured.clear()
            model(batch)
            final_stds.append(captured[id(layer)])
    finally:
        model.train(was_training)
        for layer, original in originals:
            object.__setattr__(layer, "forward", original)
    return final_stds
