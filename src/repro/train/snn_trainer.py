"""SNN fine-tuning with surrogate-gradient learning (SGL).

After conversion the SNN is trained in the spiking domain (paper
Section III-B): the temporal unroll is differentiated end-to-end (BPTT
through all ``T`` steps), the spike discontinuity uses the boxcar
surrogate, and the weights, thresholds and leaks are optimised jointly
(following DIET-SNN).  Per the paper, the SNN learning rate starts two
orders of magnitude below the DNN's and decays on the same milestones.

The trainer clamps thresholds positive and leaks into ``[0, 1]`` after
every step — the constrained parameterisation of the LIF model.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..nn import CrossEntropyLoss
from ..obs import get_logger
from ..obs import health as obs_health
from ..obs import metrics as obs_metrics
from ..obs import profile as obs_profile
from ..obs import trace
from ..obs.instruments import record_spike_profile
from ..optim import SGD, Adam, MultiStepLR, paper_milestones
from ..snn import SpikingNetwork, SpikingNeuron
from .guard import NonFiniteDetected, NonFiniteGuard
from .history import TrainingHistory
from .metrics import evaluate_snn
from .trainer import MIN_THRESHOLD

MIN_LEAK, MAX_LEAK = 0.0, 1.0

_log = get_logger("snn")


@dataclass
class SNNTrainConfig:
    """Hyperparameters for SGL fine-tuning.

    Defaults mirror the paper: a small starting LR (1e-4 in the paper
    for full-scale runs) with the same 60/80/90% decay.

    Extensions beyond the paper (both default off):

    - ``spike_penalty`` adds an L1 spike-rate regulariser (Spike-Thrift
      style) trading accuracy against inference energy;
    - ``input_noise_std`` trains with Gaussian input noise (HIRE-SNN
      style) for robustness.

    ``simulation_mode`` selects the temporal engine used for the whole
    fit (``None`` keeps each network's own setting): ``"fused"`` runs
    the time-folded layer-major engine — the fast path for the BPTT
    unroll — and ``"stepwise"`` pins the classic step-major loop.  Both
    compute the same gradients (see ``tests/test_fused_equivalence.py``).
    """

    epochs: int = 20
    lr: float = 1e-3
    optimizer: str = "adam"
    momentum: float = 0.9
    weight_decay: float = 0.0
    gamma: float = 0.1
    train_thresholds: bool = True
    train_leaks: bool = True
    spike_penalty: float = 0.0
    input_noise_std: float = 0.0
    noise_seed: int = 0
    simulation_mode: Optional[str] = None

    def __post_init__(self) -> None:
        if self.epochs <= 0:
            raise ValueError("epochs must be positive")
        if self.optimizer not in ("adam", "sgd"):
            raise ValueError("optimizer must be 'adam' or 'sgd'")
        if self.spike_penalty < 0:
            raise ValueError("spike_penalty must be non-negative")
        if self.input_noise_std < 0:
            raise ValueError("input_noise_std must be non-negative")
        if self.simulation_mode is not None and (
            self.simulation_mode not in SpikingNetwork.MODES
        ):
            raise ValueError(
                f"simulation_mode must be None or one of "
                f"{SpikingNetwork.MODES}, got '{self.simulation_mode}'"
            )


def clamp_neuron_parameters(snn: SpikingNetwork) -> None:
    """Project neuron parameters back onto their valid ranges."""
    for neuron in snn.spiking_neurons():
        np.maximum(neuron.v_threshold.data, MIN_THRESHOLD, out=neuron.v_threshold.data)
        np.clip(neuron.leak.data, MIN_LEAK, MAX_LEAK, out=neuron.leak.data)


class SNNTrainer:
    """Fine-tunes a converted SNN with BPTT + surrogate gradients."""

    def __init__(self, config: SNNTrainConfig) -> None:
        self.config = config
        self.criterion = CrossEntropyLoss()

    def _configure_trainability(self, snn: SpikingNetwork) -> None:
        for neuron in snn.spiking_neurons():
            neuron.v_threshold.requires_grad = self.config.train_thresholds
            neuron.leak.requires_grad = self.config.train_leaks

    def _build_optimizer(self, snn: SpikingNetwork):
        cfg = self.config
        params = [p for p in snn.parameters() if p.requires_grad]
        if cfg.optimizer == "adam":
            return Adam(params, lr=cfg.lr, weight_decay=cfg.weight_decay)
        return SGD(
            params, lr=cfg.lr, momentum=cfg.momentum, weight_decay=cfg.weight_decay
        )

    def fit(
        self,
        snn: SpikingNetwork,
        train_batches_factory,
        test_batches_factory=None,
        verbose: bool = False,
        guard: Optional[NonFiniteGuard] = None,
        on_epoch_end=None,
        start_epoch: int = 1,
    ) -> TrainingHistory:
        """Fine-tune ``snn`` in the spiking domain.

        ``guard`` enables NaN/Inf detection with rollback + LR-backoff
        recovery; ``on_epoch_end(epoch, history)`` fires after every
        completed epoch (the pipeline's auto-checkpoint hook);
        ``start_epoch`` resumes mid-schedule (the LR schedule is
        fast-forwarded to match).
        """
        from .regularizers import SpikeRateRegularizer

        cfg = self.config
        if not 1 <= start_epoch <= cfg.epochs:
            raise ValueError(
                f"start_epoch must lie in [1, {cfg.epochs}], got {start_epoch}"
            )
        self._configure_trainability(snn)
        optimizer = self._build_optimizer(snn)
        scheduler = MultiStepLR(
            optimizer, milestones=paper_milestones(cfg.epochs), gamma=cfg.gamma
        )
        for _ in range(1, start_epoch):
            scheduler.step()
        history = TrainingHistory()
        regularizer = None
        if cfg.spike_penalty > 0:
            regularizer = SpikeRateRegularizer(cfg.spike_penalty).attach(snn)
        noise_rng = np.random.default_rng(cfg.noise_seed)
        previous_mode = snn.mode
        if cfg.simulation_mode is not None:
            snn.mode = cfg.simulation_mode
        try:
            self._run_epochs(
                snn, train_batches_factory, test_batches_factory,
                optimizer, scheduler, history, regularizer, noise_rng, verbose,
                guard, on_epoch_end, start_epoch,
            )
        finally:
            snn.mode = previous_mode
            if regularizer is not None:
                regularizer.detach()
        return history

    def _train_epoch(
        self, snn, optimizer, train_batches_factory, regularizer, noise_rng,
        guard,
    ):
        """One pass over the training set; raises
        :class:`NonFiniteDetected` when the guard spots NaN/Inf."""
        cfg = self.config
        losses, correct, seen = [], 0, 0
        health_monitor = obs_health.active()
        max_grad_sq = 0.0
        for images, labels in train_batches_factory:
            optimizer.zero_grad()
            images = np.asarray(images)
            if cfg.input_noise_std > 0:
                images = images + noise_rng.normal(
                    0.0, cfg.input_noise_std, size=images.shape
                )
            if regularizer is not None:
                regularizer.reset()
            logits = snn(images)
            loss = self.criterion(logits, labels)
            if regularizer is not None:
                penalty = regularizer.penalty()
                if penalty is not None:
                    loss = loss + penalty
            loss.backward()
            if health_monitor is not None:
                # Worst gradient norm of the epoch, sampled before the
                # guard can roll anything back — the explosion alert is
                # the early warning for the NaN the guard later catches.
                max_grad_sq = max(max_grad_sq, obs_health.gradient_sq_norm(snn))
            if guard is not None:
                site = guard.scan(snn, loss)
                if site is not None:
                    raise NonFiniteDetected(site)
            optimizer.step()
            clamp_neuron_parameters(snn)
            losses.append(loss.item())
            correct += int((logits.data.argmax(axis=1) == labels).sum())
            seen += len(labels)
        grad_norm = float(np.sqrt(max_grad_sq)) if health_monitor else None
        return losses, correct, seen, grad_norm

    def _run_epochs(
        self,
        snn,
        train_batches_factory,
        test_batches_factory,
        optimizer,
        scheduler,
        history,
        regularizer,
        noise_rng,
        verbose,
        guard=None,
        on_epoch_end=None,
        start_epoch: int = 1,
    ) -> None:
        cfg = self.config
        if guard is not None:
            guard.note_good_epoch(snn, start_epoch - 1)
        for epoch in range(start_epoch, cfg.epochs + 1):
            with trace.span(
                "snn_epoch", epoch=epoch, timesteps=snn.timesteps
            ) as span:
                started = time.perf_counter()
                while True:
                    snn.train()
                    try:
                        with obs_profile.region("snn.train_epoch"):
                            losses, correct, seen, grad_norm = self._train_epoch(
                                snn, optimizer, train_batches_factory,
                                regularizer, noise_rng, guard,
                            )
                        break
                    except NonFiniteDetected as detected:
                        guard.recover(
                            snn, optimizer, scheduler,
                            site=detected.site, epoch=epoch,
                        )
                if guard is not None:
                    guard.note_good_epoch(snn, epoch)
                elapsed = time.perf_counter() - started

                layer_rates = None
                health_monitor = obs_health.active()
                if test_batches_factory is not None and health_monitor is not None:
                    # Piggyback spike-rate measurement on the epoch's
                    # test pass: record spike counters for its duration
                    # and fold them into per-layer rates for the
                    # collapse rule.  Recording works in both temporal
                    # engines and is restored afterwards.
                    previous_recording = [
                        n.recording for n in snn.spiking_neurons()
                    ]
                    snn.reset_spike_stats()
                    snn.set_recording(True)
                    try:
                        with obs_profile.region("snn.eval"):
                            test_acc = evaluate_snn(snn, test_batches_factory)
                        layer_rates = record_spike_profile(snn)
                    finally:
                        for neuron, was_recording in zip(
                            snn.spiking_neurons(), previous_recording
                        ):
                            neuron.recording = was_recording
                elif test_batches_factory is not None:
                    with obs_profile.region("snn.eval"):
                        test_acc = evaluate_snn(snn, test_batches_factory)
                else:
                    test_acc = float("nan")
                history.record(
                    epoch=epoch,
                    train_loss=float(np.mean(losses)) if losses else float("nan"),
                    train_accuracy=correct / max(seen, 1),
                    test_accuracy=test_acc,
                    learning_rate=optimizer.lr,
                    epoch_seconds=elapsed,
                )
                span.set(
                    train_loss=history.train_loss[-1],
                    train_accuracy=history.train_accuracy[-1],
                    test_accuracy=test_acc,
                )
                obs_metrics.gauge("snn.train_loss", history.train_loss[-1])
                obs_metrics.gauge("snn.train_accuracy", history.train_accuracy[-1])
                obs_metrics.gauge("snn.test_accuracy", test_acc)
                obs_metrics.observe("snn.epoch_seconds", elapsed)
                obs_metrics.inc("snn.examples_seen", seen)
                obs_health.observe_epoch(
                    "snn",
                    epoch,
                    loss=history.train_loss[-1],
                    accuracy=test_acc,
                    grad_norm=grad_norm,
                    model=snn,
                    timesteps=snn.timesteps,
                    layer_rates=layer_rates,
                )
                scheduler.step()
                _log.log(
                    "info" if verbose else "debug",
                    f"T={snn.timesteps} epoch {epoch:3d}/{cfg.epochs} "
                    f"loss={history.train_loss[-1]:.4f} "
                    f"train={history.train_accuracy[-1]:.3f} "
                    f"test={test_acc:.3f} ({elapsed:.1f}s)",
                    epoch=epoch,
                    timesteps=snn.timesteps,
                    train_loss=history.train_loss[-1],
                    train_accuracy=history.train_accuracy[-1],
                    test_accuracy=test_acc,
                    seconds=elapsed,
                )
                if on_epoch_end is not None:
                    on_epoch_end(epoch, history)
