"""Training history record shared by the DNN and SNN trainers."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional


@dataclass
class TrainingHistory:
    """Per-epoch training curves.

    ``epoch_seconds`` feeds the Fig. 3 simulation-time comparison;
    ``peak_activation_memory`` (when the trainer's memory model is
    enabled) feeds the Fig. 3 memory comparison.
    """

    epochs: List[int] = field(default_factory=list)
    train_loss: List[float] = field(default_factory=list)
    train_accuracy: List[float] = field(default_factory=list)
    test_accuracy: List[float] = field(default_factory=list)
    learning_rate: List[float] = field(default_factory=list)
    epoch_seconds: List[float] = field(default_factory=list)
    peak_activation_memory: Optional[float] = None

    def record(
        self,
        epoch: int,
        train_loss: float,
        train_accuracy: float,
        test_accuracy: float,
        learning_rate: float,
        epoch_seconds: float,
    ) -> None:
        self.epochs.append(epoch)
        self.train_loss.append(train_loss)
        self.train_accuracy.append(train_accuracy)
        self.test_accuracy.append(test_accuracy)
        self.learning_rate.append(learning_rate)
        self.epoch_seconds.append(epoch_seconds)

    @property
    def best_test_accuracy(self) -> float:
        if not self.test_accuracy:
            raise ValueError("history is empty")
        return max(self.test_accuracy)

    @property
    def final_test_accuracy(self) -> float:
        if not self.test_accuracy:
            raise ValueError("history is empty")
        return self.test_accuracy[-1]

    @property
    def mean_epoch_seconds(self) -> float:
        if not self.epoch_seconds:
            raise ValueError("history is empty")
        return sum(self.epoch_seconds) / len(self.epoch_seconds)
