"""Gradient-based input attacks (FGSM) for robustness evaluation.

HIRE-SNN (Kundu et al., cited by the paper) argues low-latency SNNs
degrade more gracefully under input perturbations than DNNs.  The fast
gradient-sign method gives the standard first-order probe:

    x_adv = x + eps * sign( d loss / d x )

For the SNN the input gradient flows through the temporal unroll and
the surrogate spike derivative — the same path SGL trains through.
"""

from __future__ import annotations

from typing import Union

import numpy as np

from ..nn import CrossEntropyLoss, Module
from ..snn import SpikingNetwork
from ..tensor import Tensor


def fgsm_attack(
    model: Union[Module, SpikingNetwork],
    images: np.ndarray,
    labels: np.ndarray,
    epsilon: float,
) -> np.ndarray:
    """Fast gradient-sign perturbation of ``images``.

    Parameters
    ----------
    model:
        A DNN (consumes Tensors) or a converted :class:`SpikingNetwork`
        (consumes arrays; differentiated through its unroll).
    images, labels:
        The clean batch.
    epsilon:
        L-inf perturbation budget (in normalised-input units).

    Returns the perturbed batch (same shape as ``images``).
    """
    if epsilon < 0:
        raise ValueError("epsilon must be non-negative")
    images = np.asarray(images, dtype=np.float64)
    if epsilon == 0:
        return images.copy()

    criterion = CrossEntropyLoss()
    was_training = model.training
    model.eval()
    try:
        x = Tensor(images, requires_grad=True)
        logits = model(x)
        loss = criterion(logits, labels)
        loss.backward()
    finally:
        model.train(was_training)
    if x.grad is None:
        raise RuntimeError(
            "input received no gradient; the model graph may be detached"
        )
    return images + epsilon * np.sign(x.grad)


def fgsm_accuracy(
    model: Union[Module, SpikingNetwork],
    batches,
    epsilon: float,
    max_batches: int = None,
) -> float:
    """Accuracy under FGSM at budget ``epsilon`` over an iterable of
    ``(images, labels)`` batches."""
    from ..tensor import no_grad

    correct = total = 0
    for index, (images, labels) in enumerate(batches):
        if max_batches is not None and index >= max_batches:
            break
        adversarial = fgsm_attack(model, images, labels, epsilon)
        was_training = model.training
        model.eval()
        try:
            with no_grad():
                if isinstance(model, SpikingNetwork):
                    logits = model(adversarial)
                else:
                    logits = model(Tensor(adversarial))
        finally:
            model.train(was_training)
        correct += int((logits.data.argmax(axis=1) == labels).sum())
        total += len(labels)
    if total == 0:
        raise ValueError("no batches provided")
    return correct / total
