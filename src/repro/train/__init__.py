"""Training loops: DNN training and SNN surrogate-gradient fine-tuning."""

from .attacks import fgsm_accuracy, fgsm_attack
from .guard import NonFiniteError, NonFiniteGuard
from .history import TrainingHistory
from .regularizers import SpikeRateRegularizer
from .metrics import accuracy, evaluate_dnn, evaluate_snn, top_k_accuracy
from .snn_trainer import SNNTrainConfig, SNNTrainer, clamp_neuron_parameters
from .trainer import DNNTrainConfig, DNNTrainer, clamp_thresholds

__all__ = [
    "DNNTrainConfig",
    "DNNTrainer",
    "NonFiniteError",
    "NonFiniteGuard",
    "SNNTrainConfig",
    "SNNTrainer",
    "SpikeRateRegularizer",
    "TrainingHistory",
    "fgsm_accuracy",
    "fgsm_attack",
    "accuracy",
    "clamp_neuron_parameters",
    "clamp_thresholds",
    "evaluate_dnn",
    "evaluate_snn",
    "top_k_accuracy",
]
