"""Non-finite training guard: detect, attribute, roll back, retry.

Surrogate-gradient fine-tuning at ultra-low T runs close to the edge —
thresholds are clamped, spike amplitudes rescale activations, and one
bad batch (or an injected fault) can blow the loss up to NaN/Inf.  An
unguarded loop then silently corrupts every later epoch: the optimizer
steps on NaN gradients and the run is unrecoverable.

:class:`NonFiniteGuard` wraps the failure handling policy:

- **detect** — after each backward pass the trainer asks the guard to
  scan the loss and the gradients;
- **attribute** — the first parameter (in registration order, i.e.
  network depth order) holding a non-finite gradient names the layer
  that blew up first;
- **recover** — the model is rolled back to the last good snapshot
  (end of the previous epoch, or the pre-training state), the learning
  rate is backed off multiplicatively, and the epoch is retried;
- **give up** — after ``max_retries`` recoveries the guard raises
  :class:`NonFiniteError` with the attribution and the actions already
  taken, instead of looping forever.

The guard is opt-in (``fit(..., guard=NonFiniteGuard())``); an
unguarded loop pays nothing.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from ..nn import Module
from ..obs import get_logger
from ..obs import metrics as obs_metrics

_log = get_logger("guard")


class NonFiniteError(RuntimeError):
    """Training diverged beyond the guard's retry budget.

    Carries the last attribution (``site``) so callers can log or
    surface where the run first went non-finite.
    """

    def __init__(self, message: str, site: Optional[str] = None) -> None:
        super().__init__(message)
        self.site = site


class NonFiniteDetected(Exception):
    """Internal control-flow signal: a batch produced NaN/Inf.

    Raised by the trainers' batch loops and caught by their epoch
    loops, which then invoke :meth:`NonFiniteGuard.recover`.  Not part
    of the public API surface.
    """

    def __init__(self, site: str) -> None:
        super().__init__(site)
        self.site = site


class NonFiniteGuard:
    """Detects non-finite loss/gradients and manages recovery.

    Parameters
    ----------
    max_retries:
        Recoveries allowed across the whole fit before giving up.
    lr_backoff:
        Multiplicative learning-rate factor applied at each recovery
        (also applied to the scheduler's base LR so later milestone
        decays start from the backed-off value).
    """

    def __init__(self, max_retries: int = 3, lr_backoff: float = 0.5) -> None:
        if max_retries < 1:
            raise ValueError("max_retries must be at least 1")
        if not 0.0 < lr_backoff < 1.0:
            raise ValueError("lr_backoff must lie in (0, 1)")
        self.max_retries = max_retries
        self.lr_backoff = lr_backoff
        self.retries_used = 0
        self.last_site: Optional[str] = None
        self._snapshot: Optional[Dict[str, np.ndarray]] = None
        self._snapshot_epoch: Optional[int] = None

    # ------------------------------------------------------------------
    # Detection & attribution
    # ------------------------------------------------------------------
    def scan(self, model: Module, loss) -> Optional[str]:
        """Return a description of the first non-finite site, else None.

        Checks the scalar loss first (cheap), then walks the parameters
        in registration order looking for non-finite gradients — the
        earliest offender names the layer where training blew up.
        """
        loss_value = float(loss.item()) if hasattr(loss, "item") else float(loss)
        loss_bad = not np.isfinite(loss_value)
        offender = self.first_nonfinite_layer(model)
        if offender is not None:
            kind = "loss and gradient" if loss_bad else "gradient"
            return f"non-finite {kind} at parameter '{offender}'"
        if loss_bad:
            return f"non-finite loss ({loss_value})"
        return None

    @staticmethod
    def first_nonfinite_layer(model: Module) -> Optional[str]:
        """Name of the first parameter with a non-finite gradient."""
        for name, param in model.named_parameters():
            grad = param.grad
            if grad is not None and not np.isfinite(grad).all():
                return name
        return None

    # ------------------------------------------------------------------
    # Snapshots & recovery
    # ------------------------------------------------------------------
    def note_good_epoch(self, model: Module, epoch: int) -> None:
        """Record a known-good state to roll back to."""
        self._snapshot = model.state_dict()  # state_dict copies
        self._snapshot_epoch = epoch

    def recover(self, model: Module, optimizer, scheduler=None,
                site: str = "unknown", epoch: Optional[int] = None) -> None:
        """Roll back to the last good snapshot and back the LR off.

        Raises :class:`NonFiniteError` once the retry budget is spent.
        """
        self.last_site = site
        self.retries_used += 1
        obs_metrics.inc("guard.recoveries")
        if self.retries_used > self.max_retries:
            raise NonFiniteError(
                f"training diverged: {site} (epoch {epoch}); "
                f"gave up after {self.max_retries} rollback+LR-backoff "
                f"retries (LR now {optimizer.lr:.3g}). Lower the learning "
                "rate, loosen gradient-sensitive hyperparameters, or "
                "inspect the offending layer's inputs.",
                site=site,
            )
        if self._snapshot is not None:
            model.load_state_dict(self._snapshot)
        optimizer.lr *= self.lr_backoff
        if scheduler is not None:
            scheduler.base_lr *= self.lr_backoff
        optimizer.zero_grad()
        obs_metrics.gauge("guard.lr_after_backoff", optimizer.lr)
        _log.warning(
            f"non-finite training state ({site}); rolled back to "
            f"epoch {self._snapshot_epoch} snapshot, LR backed off to "
            f"{optimizer.lr:.3g} "
            f"(retry {self.retries_used}/{self.max_retries})",
            site=site,
            epoch=epoch,
            retry=self.retries_used,
            lr=optimizer.lr,
        )
