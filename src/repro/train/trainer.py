"""DNN training loop (paper Section IV-A recipe).

SGD with momentum, LR decayed by 0.1 at 60/80/90% of the epoch budget,
cross-entropy loss, dropout regularisation, trainable clipping
thresholds learned jointly with the weights.  The trainer clamps each
``ThresholdReLU``'s ``mu`` to stay positive after every step (gradient
noise can otherwise push a threshold through zero early in training).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Iterable, Optional, Tuple

import numpy as np

from ..nn import CrossEntropyLoss, Module, ThresholdReLU
from ..obs import get_logger
from ..obs import health as obs_health
from ..obs import metrics as obs_metrics
from ..obs import profile as obs_profile
from ..obs import trace
from ..optim import SGD, MultiStepLR, paper_milestones
from ..tensor import Tensor
from .guard import NonFiniteDetected, NonFiniteGuard
from .history import TrainingHistory
from .metrics import evaluate_dnn

MIN_THRESHOLD = 1e-2

_log = get_logger("dnn")


@dataclass
class DNNTrainConfig:
    """Hyperparameters for DNN training.

    Defaults follow the paper (LR 0.01, decay 0.1 at 60/80/90%);
    ``epochs`` is experiment-specific.
    """

    epochs: int = 30
    lr: float = 0.01
    momentum: float = 0.9
    weight_decay: float = 5e-4
    gamma: float = 0.1
    label_smoothing: float = 0.0

    def __post_init__(self) -> None:
        if self.epochs <= 0:
            raise ValueError("epochs must be positive")


def clamp_thresholds(model: Module, minimum: float = MIN_THRESHOLD) -> None:
    """Keep every trainable clipping threshold strictly positive."""
    for module in model.modules():
        if isinstance(module, ThresholdReLU):
            np.maximum(module.mu.data, minimum, out=module.mu.data)


class DNNTrainer:
    """Trains a DNN and records per-epoch curves."""

    def __init__(self, config: DNNTrainConfig) -> None:
        self.config = config
        self.criterion = CrossEntropyLoss(label_smoothing=config.label_smoothing)

    def _train_epoch(
        self,
        model: Module,
        optimizer,
        train_batches_factory,
        guard: Optional[NonFiniteGuard],
    ):
        """One pass over the training set; raises
        :class:`NonFiniteDetected` when the guard spots NaN/Inf."""
        losses, correct, seen = [], 0, 0
        health_monitor = obs_health.active()
        max_grad_sq = 0.0
        for images, labels in train_batches_factory:
            optimizer.zero_grad()
            logits = model(Tensor(np.asarray(images)))
            loss = self.criterion(logits, labels)
            loss.backward()
            if health_monitor is not None:
                # Track the epoch's worst gradient norm *before* the
                # guard clears/rolls back anything — explosion alerts
                # should fire ahead of the NaN they precede.
                max_grad_sq = max(max_grad_sq, obs_health.gradient_sq_norm(model))
            if guard is not None:
                site = guard.scan(model, loss)
                if site is not None:
                    raise NonFiniteDetected(site)
            optimizer.step()
            clamp_thresholds(model)
            losses.append(loss.item())
            correct += int((logits.data.argmax(axis=1) == labels).sum())
            seen += len(labels)
        grad_norm = float(np.sqrt(max_grad_sq)) if health_monitor else None
        return losses, correct, seen, grad_norm

    def fit(
        self,
        model: Module,
        train_batches_factory,
        test_batches_factory=None,
        verbose: bool = False,
        guard: Optional[NonFiniteGuard] = None,
        on_epoch_end=None,
        start_epoch: int = 1,
    ) -> TrainingHistory:
        """Train ``model``.

        ``train_batches_factory`` / ``test_batches_factory`` are
        re-iterables (e.g. :class:`repro.data.DataLoader`) yielding
        ``(images, labels)`` batches each epoch.

        ``guard`` enables NaN/Inf detection with rollback + LR-backoff
        recovery; ``on_epoch_end(epoch, history)`` fires after every
        completed epoch (checkpointing hook); ``start_epoch`` resumes a
        run mid-schedule (the LR schedule is fast-forwarded to match).
        """
        cfg = self.config
        if not 1 <= start_epoch <= cfg.epochs:
            raise ValueError(
                f"start_epoch must lie in [1, {cfg.epochs}], got {start_epoch}"
            )
        optimizer = SGD(
            model.parameters(),
            lr=cfg.lr,
            momentum=cfg.momentum,
            weight_decay=cfg.weight_decay,
        )
        scheduler = MultiStepLR(
            optimizer, milestones=paper_milestones(cfg.epochs), gamma=cfg.gamma
        )
        for _ in range(1, start_epoch):
            scheduler.step()
        history = TrainingHistory()
        if guard is not None:
            guard.note_good_epoch(model, start_epoch - 1)

        for epoch in range(start_epoch, cfg.epochs + 1):
            with trace.span("dnn_epoch", epoch=epoch) as span:
                started = time.perf_counter()
                while True:
                    model.train()
                    try:
                        with obs_profile.region("dnn.train_epoch"):
                            losses, correct, seen, grad_norm = self._train_epoch(
                                model, optimizer, train_batches_factory, guard
                            )
                        break
                    except NonFiniteDetected as detected:
                        guard.recover(
                            model, optimizer, scheduler,
                            site=detected.site, epoch=epoch,
                        )
                if guard is not None:
                    guard.note_good_epoch(model, epoch)
                elapsed = time.perf_counter() - started

                if test_batches_factory is not None:
                    with obs_profile.region("dnn.eval"):
                        test_acc = evaluate_dnn(model, test_batches_factory)
                else:
                    test_acc = float("nan")
                history.record(
                    epoch=epoch,
                    train_loss=float(np.mean(losses)) if losses else float("nan"),
                    train_accuracy=correct / max(seen, 1),
                    test_accuracy=test_acc,
                    learning_rate=optimizer.lr,
                    epoch_seconds=elapsed,
                )
                span.set(
                    train_loss=history.train_loss[-1],
                    train_accuracy=history.train_accuracy[-1],
                    test_accuracy=test_acc,
                )
                obs_metrics.gauge("dnn.train_loss", history.train_loss[-1])
                obs_metrics.gauge("dnn.train_accuracy", history.train_accuracy[-1])
                obs_metrics.gauge("dnn.test_accuracy", test_acc)
                obs_metrics.observe("dnn.epoch_seconds", elapsed)
                obs_metrics.inc("dnn.examples_seen", seen)
                obs_health.observe_epoch(
                    "dnn",
                    epoch,
                    loss=history.train_loss[-1],
                    accuracy=test_acc,
                    grad_norm=grad_norm,
                )
                scheduler.step()
                _log.log(
                    "info" if verbose else "debug",
                    f"epoch {epoch:3d}/{cfg.epochs} "
                    f"loss={history.train_loss[-1]:.4f} "
                    f"train={history.train_accuracy[-1]:.3f} "
                    f"test={test_acc:.3f} ({elapsed:.1f}s)",
                    epoch=epoch,
                    train_loss=history.train_loss[-1],
                    train_accuracy=history.train_accuracy[-1],
                    test_accuracy=test_acc,
                    seconds=elapsed,
                )
                if on_epoch_end is not None:
                    on_epoch_end(epoch, history)
        return history
