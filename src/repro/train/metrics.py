"""Evaluation metrics and helpers."""

from __future__ import annotations

from typing import Iterable, Tuple

import numpy as np

from ..nn import Module
from ..snn import SpikingNetwork
from ..tensor import Tensor, no_grad


def accuracy(logits: np.ndarray, labels: np.ndarray) -> float:
    """Top-1 accuracy of a logits batch."""
    logits = np.asarray(logits)
    labels = np.asarray(labels)
    if logits.shape[0] != labels.shape[0]:
        raise ValueError("batch size mismatch between logits and labels")
    return float((logits.argmax(axis=1) == labels).mean())


def top_k_accuracy(logits: np.ndarray, labels: np.ndarray, k: int = 5) -> float:
    """Top-k accuracy of a logits batch."""
    logits = np.asarray(logits)
    labels = np.asarray(labels)
    k = min(k, logits.shape[1])
    top = np.argpartition(-logits, k - 1, axis=1)[:, :k]
    return float((top == labels[:, None]).any(axis=1).mean())


@no_grad()
def evaluate_dnn(
    model: Module, batches: Iterable[Tuple[np.ndarray, np.ndarray]]
) -> float:
    """Top-1 test accuracy of a DNN over an iterable of batches."""
    was_training = model.training
    model.eval()
    correct = total = 0
    try:
        for images, labels in batches:
            logits = model(Tensor(np.asarray(images)))
            correct += int((logits.data.argmax(axis=1) == labels).sum())
            total += len(labels)
    finally:
        model.train(was_training)
    if total == 0:
        raise ValueError("evaluation received no batches")
    return correct / total


@no_grad()
def evaluate_snn(
    snn: SpikingNetwork, batches: Iterable[Tuple[np.ndarray, np.ndarray]]
) -> float:
    """Top-1 test accuracy of an SNN (time-averaged logits)."""
    was_training = snn.training
    snn.eval()
    correct = total = 0
    try:
        for images, labels in batches:
            logits = snn(np.asarray(images))
            correct += int((logits.data.argmax(axis=1) == labels).sum())
            total += len(labels)
    finally:
        snn.train(was_training)
    if total == 0:
        raise ValueError("evaluation received no batches")
    return correct / total
