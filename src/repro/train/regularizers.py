"""Spike-activity regularisation for SGL fine-tuning.

The paper's energy model (Section VI) prices every hidden-layer spike
as one accumulate, so the spike count *is* the energy knob.  Related
work the paper compares against (Spike-Thrift / attention-guided
compression, Kundu et al.) explicitly penalises spiking activity during
training.  :class:`SpikeRateRegularizer` implements the simple version:
an L1 penalty on the expected spike rate of every hidden layer, added
to the task loss during SGL, trading accuracy against energy.

The penalty is differentiable through the same surrogate gradient as
the task loss (spike tensors already carry the boxcar window), so
thresholds learn to rise exactly where spikes are cheap to remove.
"""

from __future__ import annotations

from typing import List, Optional

from ..snn import SpikingNetwork, SpikingNeuron
from ..tensor import Tensor


class SpikeRateRegularizer:
    """Accumulates an L1 spike-rate penalty over one forward window.

    Attach with :meth:`attach` before the forward pass; the hook wraps
    each neuron's forward to collect its spike output.  ``penalty``
    returns ``weight * mean(sum_t spikes / (beta V^th))`` — the mean
    *rate* so the scale is architecture-independent.  Call
    :meth:`detach` to restore the original forwards.
    """

    def __init__(self, weight: float = 1e-3) -> None:
        if weight < 0:
            raise ValueError("weight must be non-negative")
        self.weight = weight
        self._collected: List[Tensor] = []
        self._patched = []

    # ------------------------------------------------------------------
    def attach(self, snn: SpikingNetwork) -> "SpikeRateRegularizer":
        if self._patched:
            raise RuntimeError("regularizer already attached")
        for neuron in snn.spiking_neurons():
            original = neuron.forward

            def recording(current, _neuron=neuron, _orig=original):
                out = _orig(current)
                # Normalise to unit-amplitude rate so the penalty is
                # comparable across layers with different beta V^th.
                amplitude = _neuron.beta * _neuron.threshold
                self._collected.append(out * (1.0 / max(amplitude, 1e-12)))
                return out

            object.__setattr__(neuron, "forward", recording)
            self._patched.append((neuron, original))
        return self

    def detach(self) -> None:
        for neuron, original in self._patched:
            object.__setattr__(neuron, "forward", original)
        self._patched = []
        self._collected = []

    def __enter__(self) -> "SpikeRateRegularizer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.detach()

    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Drop spikes collected by previous forward windows."""
        self._collected = []

    def penalty(self) -> Optional[Tensor]:
        """The accumulated penalty term (None if nothing recorded)."""
        if not self._collected:
            return None
        total = None
        count = 0
        for spikes in self._collected:
            term = spikes.mean()
            total = term if total is None else total + term
            count += 1
        return total * (self.weight / count)
