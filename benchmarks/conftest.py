"""Benchmark-harness configuration.

Every benchmark regenerates one of the paper's tables or figures at the
``bench`` scale preset (reduced width / epochs / synthetic data, see
DESIGN.md) and prints the same rows/series the paper reports.  Trained
contexts and fine-tuned SNNs are cached per process, so running the
whole directory trains each source network exactly once.

Run with:  pytest benchmarks/ --benchmark-only -s
"""

import pytest


@pytest.fixture
def once(benchmark):
    """Run the benchmarked callable exactly once (experiments are long;
    statistical repetition is meaningless for accuracy tables)."""

    def runner(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return runner
