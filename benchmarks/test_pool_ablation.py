"""Pooling ablation (paper Section IV-A claim).

The paper chooses max pooling over the field's usual average pooling,
claiming it "improves the accuracy of both the baseline DNN and
converted SNN" while still emitting binary spikes (via the rate-gated
pool).  This bench trains iso-architecture VGG-11 twins with max vs
average pooling and compares DNN accuracy and conversion accuracy.
"""

import numpy as np
import pytest

from repro.conversion import ConversionConfig, convert_dnn_to_snn
from repro.data import DataLoader, Normalize, synth_cifar10
from repro.experiments import format_table, save_results
from repro.models import vgg11
from repro.train import DNNTrainConfig, DNNTrainer, evaluate_dnn, evaluate_snn
from repro.train.lsuv import lsuv_init


def run_pool_ablation(timesteps=(2, 3), seed=0):
    dataset = synth_cifar10(image_size=16, train_size=500, test_size=150, seed=seed)
    mean, std = dataset.channel_stats()
    normalize = Normalize(mean, std)
    test_loader = DataLoader(
        dataset.test_images, dataset.test_labels, batch_size=50, transform=normalize
    )
    results = {}
    for pool in ("max", "avg"):
        model = vgg11(
            num_classes=10, image_size=16, width_multiplier=0.25,
            dropout=0.0, pool=pool, rng=np.random.default_rng(seed + 7),
        )
        lsuv_init(
            model,
            normalize(dataset.train_images[:100], np.random.default_rng(seed)),
        )
        train_loader = DataLoader(
            dataset.train_images, dataset.train_labels,
            batch_size=50, shuffle=True, transform=normalize, seed=seed + 1,
        )
        DNNTrainer(DNNTrainConfig(epochs=14, lr=0.015)).fit(model, train_loader)
        entry = {"dnn": evaluate_dnn(model, test_loader) * 100.0}
        for t in timesteps:
            calibration = DataLoader(
                dataset.train_images, dataset.train_labels,
                batch_size=50, transform=normalize,
            )
            conversion = convert_dnn_to_snn(
                model, calibration, ConversionConfig(timesteps=t)
            )
            entry[f"conv_t{t}"] = evaluate_snn(conversion.snn, test_loader) * 100.0
        results[pool] = entry
    return results


@pytest.mark.benchmark(group="ablation")
def test_pool_ablation(once):
    results = once(run_pool_ablation)
    rows = [
        [pool, entry["dnn"], entry["conv_t2"], entry["conv_t3"]]
        for pool, entry in results.items()
    ]
    print()
    print(format_table(
        ["pool", "DNN %", "conv T=2 %", "conv T=3 %"],
        rows,
        title="Pooling ablation (VGG-11, synthetic CIFAR-10)",
    ))
    save_results("pool_ablation", results)
    # Both variants must train and convert to something usable.
    for entry in results.values():
        assert entry["dnn"] > 30.0
        assert entry["conv_t2"] >= 10.0 - 1e-9
    # The gated max pool must not be catastrophically worse than avg at
    # ultra-low T (the paper claims it is actually better).
    assert results["max"]["conv_t2"] >= results["avg"]["conv_t2"] - 15.0
