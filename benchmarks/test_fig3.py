"""Fig. 3: simulation time per epoch and memory vs approach.

Paper (full scale, 2080 Ti): T=2 is 2.38x / 2.33x faster than the
5-step hybrid for training / inference, with 1.44x lower training
memory and near-identical inference memory.  The scaling law (time and
BPTT memory ~ linear in T; inference memory ~ constant) is hardware
independent and is what this bench asserts.
"""

import pytest

from repro.experiments import render_fig3, run_fig3, save_results


@pytest.mark.benchmark(group="fig3")
@pytest.mark.parametrize("dataset", ["cifar10", "cifar100"])
def test_fig3(once, dataset):
    result = once(run_fig3, dataset=dataset, timesteps=(2, 3, 5))
    print()
    print(render_fig3(result))
    save_results(f"fig3_{dataset}", result)

    rows = {row["timesteps"]: row for row in result["rows"]}
    # Training time grows with T; T=2 must be substantially faster than
    # T=5 (paper: 2.38x; allow >1.5x on this substrate).
    assert rows[2]["train_speedup_vs_5step"] > 1.5
    assert rows[3]["train_seconds_per_epoch"] < rows[5]["train_seconds_per_epoch"]
    # Inference time likewise.
    assert rows[2]["inference_speedup_vs_5step"] > 1.5
    # Training (BPTT) memory grows with T (paper: 1.44x reduction at T=2).
    assert rows[2]["memory_reduction_vs_5step"] > 1.2
    # Inference memory is nearly T-independent.
    assert rows[5]["inference_memory_mb"] < 1.25 * rows[2]["inference_memory_mb"]
