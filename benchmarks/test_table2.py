"""Table II: comparison with SOTA deep-SNN training methods (VGG-16).

Paper: the 2-step hybrid model is within ~1-2% of baselines that need
5-16 steps.  Expected shape here: ours at T=2 is competitive with the
higher-T baselines (the latency win), and every hybrid method beats the
raw surrogate-from-scratch baseline.
"""

import pytest

from repro.experiments import (
    PAPER_TABLE2,
    render_table2,
    run_table2,
    save_results,
)


@pytest.mark.benchmark(group="table2")
@pytest.mark.parametrize("dataset", ["cifar10", "cifar100"])
def test_table2(once, dataset):
    rows = once(run_table2, dataset=dataset)
    print()
    print(render_table2(rows))
    print("\npaper reference rows:")
    for name, training, accuracy, steps in PAPER_TABLE2[dataset]:
        print(f"  {name:24s} {training:24s} {accuracy:6.2f}%  T={steps}")
    save_results(f"table2_{dataset}", {"rows": rows})

    ours = next(r for r in rows if r["method"].startswith("this work"))
    chance = 10.0 if dataset == "cifar10" else 1.0
    assert ours["accuracy"] > 2.0 * chance
    assert ours["timesteps"] == 2
    # Latency win: every comparator uses strictly more time steps.
    assert all(
        r["timesteps"] > ours["timesteps"] for r in rows if r is not ours
    )
