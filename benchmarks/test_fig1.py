"""Fig. 1: activation functions, distributions, K(mu) and h(T, mu).

Paper claims regenerated here:
- the pre-activation distributions are sharply skewed (most mass near
  zero; >90% below d_max/3);
- for the *uniform* density h(T, mu) = 1/2 for every T (so Eq. 7
  vanishes, [15]'s result);
- for the *empirical* density h is below 1/2 and decreases as T drops
  toward 1 — the error source the paper identifies;
- Algorithm 1 responds with alpha < 1 (threshold into the mass) and
  beta > 1 (amplified steps).
"""

import pytest

from repro.experiments import render_fig1, run_fig1, save_results


@pytest.mark.benchmark(group="fig1")
def test_fig1(once):
    result = once(run_fig1, scale_name="bench", dataset="cifar10", timesteps=2)
    print()
    print(render_fig1(result))
    save_results(
        "fig1",
        {
            "mu": result["mu"],
            "d_max": result["d_max"],
            "alpha": result["alpha"],
            "beta": result["beta"],
            "k_mu": result["k_mu"],
            "h_t_mu": result["h_t_mu"],
            "h_t_mu_uniform": result["h_t_mu_uniform"],
            "skew_mass_below_dmax_third": result["dnn_mass_below_third_of_dmax"],
        },
    )

    # Skewed distribution: the d_max outlier claim.
    assert result["dnn_mass_below_third_of_dmax"] > 0.8
    # Uniform h stays at 1/2 for all T (the [15] assumption).
    for value in result["h_t_mu_uniform"].values():
        assert value == pytest.approx(0.5, abs=0.01)
    # Empirical h sits below the uniform value ...
    assert all(h < 0.49 for h in result["h_t_mu"].values())
    # ... and decreases toward small T (the Fig. 1a insert).
    assert result["h_t_mu"][1] <= result["h_t_mu"][5]
    # Algorithm 1's response: pull the threshold in, push the step up.
    assert result["alpha"] < 1.0
    assert result["beta"] > 1.0
    # The scaled staircase must hug the DNN curve more tightly than the
    # unscaled one over the high-density region [0, mu].
    import numpy as np

    grid = result["grid"]
    mask = grid <= result["mu"]
    dnn = result["curves"]["dnn_threshold_relu"]
    plain_err = np.abs(result["curves"]["snn_staircase"] - dnn)[mask].mean()
    scaled_err = np.abs(result["curves"]["snn_staircase_scaled"] - dnn)[mask].mean()
    assert scaled_err < plain_err
