"""Fig. 4: spiking activity, FLOPs and compute energy (VGG-16).

Paper (full scale): the 2-step SNN reduces spike count 1.53x vs the
5-step hybrid and 4.22x vs the 16-step conversion; compute energy drops
103.5x (CIFAR-10) / 159.2x (CIFAR-100) vs the iso-architecture DNN.

Shape asserted here: SNN energy well below the DNN's; total spikes,
FLOPs and energy increase with T across the four SNN competitors; the
16-step conversion is the most expensive SNN.
"""

import pytest

from repro.experiments import render_fig4, run_fig4, save_results
from repro.energy import neuromorphic_energy


@pytest.mark.benchmark(group="fig4")
@pytest.mark.parametrize("dataset", ["cifar10", "cifar100"])
def test_fig4(once, dataset):
    result = once(run_fig4, dataset=dataset)
    print()
    print(render_fig4(result))
    save_results(f"fig4_{dataset}", result)

    by_label = {p["label"]: p for p in result["profiles"]}
    ours2 = by_label["proposed T=2"]
    ours3 = by_label["proposed T=3"]
    hybrid5 = by_label["hybrid T=5 [7]"]
    deng16 = by_label["conversion T=16 [15]"]

    # Energy improvement over the DNN (paper: two orders of magnitude at
    # full width; at reduced width the MAC/AC gap is smaller but the SNN
    # must still win clearly).
    assert ours2["energy_improvement_vs_dnn"] > 3.0
    # Energy ordering across latencies: T=2 < T=3 < T=16 conversion.
    assert ours2["energy_joules"] < ours3["energy_joules"]
    assert ours3["energy_joules"] < deng16["energy_joules"]
    # Ours at T=2 beats both baselines on energy (paper: 1.27x vs [7],
    # 5.18x vs [15]).
    assert ours2["energy_joules"] < hybrid5["energy_joules"]
    assert ours2["energy_joules"] < deng16["energy_joules"]
    # The 16-step conversion emits the most spikes per neuron.
    assert deng16["average_spike_rate"] > ours2["average_spike_rate"]
    # SNN FLOPs below the dense DNN FLOPs for the low-T models.
    assert ours2["total_flops"] < result["dnn_total_flops"]
    # Neuromorphic estimates are compute-bound (Section VI-B).
    tn = neuromorphic_energy(ours2["total_flops"], 2, "truenorth")
    assert tn == pytest.approx(ours2["total_flops"] * 0.4, rel=1e-3)
