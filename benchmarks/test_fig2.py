"""Fig. 2: conversion-only accuracy vs number of time steps.

Paper shape: both prior threshold rules collapse for T <= 5, with the
max-pre-activation rule of [15] strictly worse than threshold-ReLU;
accuracy recovers as T grows.  The proposed alpha/beta scaling is swept
for context and must dominate at the ultra-low end (T in {2, 3}).
"""

import numpy as np
import pytest

from repro.experiments import export_csv, render_fig2, run_fig2, save_results

SWEEP = (1, 2, 3, 4, 5, 8, 16, 32)


@pytest.mark.benchmark(group="fig2")
@pytest.mark.parametrize("arch", ["vgg16", "resnet20"])
def test_fig2(once, arch):
    result = once(
        run_fig2,
        arch=arch,
        dataset="cifar10",
        timesteps=SWEEP,
        strategies=("threshold_relu", "max_activation", "proposed"),
    )
    print()
    print(render_fig2(result))
    save_results(f"fig2_{arch}", result)
    export_csv(
        f"fig2_{arch}",
        {"timesteps": result["timesteps"], **result["series"]},
    )

    series = result["series"]
    chance = 10.0
    # Ultra-low-T collapse of the prior rules (T = 1..3 near chance).
    for strategy in ("threshold_relu", "max_activation"):
        low_t = series[strategy][:3]
        assert max(low_t) < chance + 15.0
    # Conversion recovers with T for the threshold-ReLU rule.
    assert series["threshold_relu"][-1] > series["threshold_relu"][0]
    # Max-pre-activation never beats threshold-ReLU by much at large T
    # (d_max is an outlier threshold — the paper's Fig. 2 ordering).
    assert np.mean(series["max_activation"]) <= np.mean(series["threshold_relu"]) + 5.0
    # The proposed scaling dominates both priors at T in {2, 3}.
    for index in (1, 2):
        prior_best = max(
            series["threshold_relu"][index], series["max_activation"][index]
        )
        assert series["proposed"][index] >= prior_best - 1e-9
