"""Extension bench: input-noise robustness of DNN vs low-latency SNN.

Not a paper table — an extension exercising the HIRE-SNN-adjacent claim
the paper's related work cites: the spiking discretisation degrades
more gracefully under input noise than the analog DNN.
"""

import pytest

from repro.experiments import (
    render_noise_robustness,
    run_noise_robustness,
    save_results,
)


@pytest.mark.benchmark(group="extension")
def test_adversarial_robustness(once):
    from repro.experiments import (
        render_adversarial_robustness,
        run_adversarial_robustness,
    )

    result = once(
        run_adversarial_robustness,
        arch="vgg11",
        dataset="cifar10",
        timesteps=2,
        epsilons=(0.0, 0.1, 0.3),
    )
    print()
    print(render_adversarial_robustness(result))
    save_results("adversarial_robustness", result)
    # FGSM must hurt the DNN; the SNN curve must be finite and bounded.
    assert result["dnn_accuracy"][-1] <= result["dnn_accuracy"][0]
    for value in result["snn_accuracy"]:
        assert 0.0 <= value <= 100.0


@pytest.mark.benchmark(group="extension")
def test_noise_robustness(once):
    result = once(
        run_noise_robustness,
        arch="vgg11",
        dataset="cifar10",
        timesteps=2,
        noise_levels=(0.0, 0.1, 0.2, 0.4),
    )
    print()
    print(render_noise_robustness(result))
    save_results("robustness", result)

    # Both models should lose accuracy monotonically-ish with noise;
    # assert the endpoints rather than strict monotonicity (noise).
    assert result["dnn_accuracy"][0] >= result["dnn_accuracy"][-1]
    assert result["snn_accuracy"][0] >= result["snn_accuracy"][-1]
    # Relative degradation of the SNN must not be catastrophically worse
    # than the DNN's (HIRE-SNN-style graceful degradation).
    dnn_drop = result["dnn_accuracy"][0] - result["dnn_accuracy"][-1]
    snn_drop = result["snn_accuracy"][0] - result["snn_accuracy"][-1]
    assert snn_drop <= dnn_drop + 25.0
