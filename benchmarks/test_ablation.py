"""Section IV-B ablations.

1. Scaling rule: replacing Algorithm 1 with the linear-grid threshold
   heuristic of [16]/[24] (no beta) and fine-tuning with SGL collapses
   accuracy at T in {2, 3} (paper: ~10% / ~1%, i.e. chance).
2. Conversion-only latency: the proposed scaling approaches the DNN at
   a smaller T than the Deng-style optimal conversion (paper: ~12 vs 16).
"""

import pytest

from repro.experiments import (
    render_latency_ablation,
    render_scaling_ablation,
    run_latency_ablation,
    run_scaling_ablation,
    save_results,
)


@pytest.mark.benchmark(group="ablation")
def test_scaling_rule_ablation(once):
    rows = once(run_scaling_ablation, dataset="cifar10", timesteps=(2, 3))
    print()
    print(render_scaling_ablation(rows))
    save_results("ablation_scaling", {"rows": rows})
    for row in rows:
        # The alpha/beta rule must beat the grid heuristic after SGL.
        assert row["proposed_sgl_accuracy"] >= row["grid_scaling_sgl_accuracy"] - 5.0
        # And its conversion initialisation must be no worse.
        assert (
            row["proposed_conversion_accuracy"]
            >= row["grid_scaling_conversion_accuracy"] - 5.0
        )


@pytest.mark.benchmark(group="ablation")
def test_conversion_latency_ablation(once):
    result = once(
        run_latency_ablation,
        dataset="cifar10",
        timesteps=(2, 3, 4, 5, 8, 12, 16),
        tolerance=0.25,
    )
    print()
    print(render_latency_ablation(result))
    save_results("ablation_latency", result)
    # Paper claim: prior conversion needs a large T (their [15]-style
    # rule: 16 steps) while the proposed scaling is the ultra-low-T
    # method.  Robust version at bench scale (single-image noise flips
    # exact first-T values; see EXPERIMENTS.md for the full discussion):
    # - at T = 2 the proposed conversion is at least the baseline's;
    # - the baseline does not reach the tolerance band below T = 8.
    ours = dict(zip(result["timesteps"], result["sweep"]["proposed"]))
    deng = dict(zip(result["timesteps"], result["sweep"]["deng_shift"]))
    assert ours[2] >= deng[2] - 2.0
    first_deng = result["first_t_deng"]
    assert first_deng == -1 or first_deng >= 8
