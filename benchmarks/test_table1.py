"""Table I: DNN / conversion / SNN-training accuracy per (arch, dataset, T).

Paper (full scale): see ``repro.experiments.table1.PAPER_TABLE1``.
Expected shape at bench scale: (b) << (a); (c) recovers most of the gap;
T=3 conversion >= T=2 conversion.
"""

import pytest

from repro.experiments import (
    render_table1,
    run_table1,
    save_results,
)
from repro.experiments.table1 import TABLE1_GRID


@pytest.mark.benchmark(group="table1")
@pytest.mark.parametrize("arch,dataset", TABLE1_GRID)
def test_table1_rows(once, arch, dataset):
    rows = once(run_table1, grid=[(arch, dataset)], timesteps=(2, 3))
    print()
    print(render_table1(rows))
    save_results(f"table1_{arch}_{dataset}", {"rows": rows})
    for row in rows:
        # Conversion initialises SGL; SGL must not end below it by much.
        assert row["snn_accuracy"] >= row["conversion_accuracy"] - 5.0
        # The DNN is the ceiling at bench scale.
        assert row["dnn_accuracy"] >= row["snn_accuracy"] - 10.0
