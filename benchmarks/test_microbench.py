"""Micro-benchmarks of the substrate hot paths.

Not a paper table — these give the throughput numbers that contextualise
the Fig. 3 timing results on this CPU substrate (conv GEMM, IF neuron
update, the Algorithm-1 search, a full SNN inference step).

The benchmark *definitions* live in :mod:`repro.bench.suite` behind the
``@register_bench`` registry, shared with the ``python -m repro.bench``
baseline runner — this module only adapts them to pytest-benchmark.
Each registered factory performs its setup untimed, sanity-checks the
kernel's output once, and returns the zero-arg callable timed here.
"""

import pytest

from repro.bench import iter_benches

CASES = list(iter_benches())


def test_registry_has_the_hot_kernels():
    names = {case.name for case in CASES}
    assert {
        "nn.conv2d_forward",
        "nn.conv2d_forward_backward",
        "snn.if_neuron_step",
        "snn.surrogate_backward",
        "conversion.algorithm1_search",
        "conversion.algorithm1_search_fast",
        "snn.full_forward_t2",
    } <= names


@pytest.mark.benchmark(group="micro")
@pytest.mark.parametrize("case", CASES, ids=lambda case: case.name)
def test_microbench(benchmark, case):
    fn = case.prepare()
    benchmark(fn)
