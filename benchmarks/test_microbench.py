"""Micro-benchmarks of the substrate hot paths.

Not a paper table — these give the throughput numbers that contextualise
the Fig. 3 timing results on this CPU substrate (conv GEMM, IF neuron
update, the Algorithm-1 search, a full SNN inference step).
"""

import numpy as np
import pytest

from repro.conversion import ConversionConfig, convert_dnn_to_snn, find_scaling_factors
from repro.data import DataLoader
from repro.models import vgg11
from repro.nn import Conv2d
from repro.snn import IFNeuron
from repro.tensor import Tensor


@pytest.fixture(scope="module")
def conv_setup():
    rng = np.random.default_rng(0)
    layer = Conv2d(16, 32, 3, padding=1, rng=rng)
    x = Tensor(rng.normal(size=(8, 16, 16, 16)))
    return layer, x


@pytest.mark.benchmark(group="micro")
def test_conv2d_forward(benchmark, conv_setup):
    layer, x = conv_setup
    out = benchmark(lambda: layer(x))
    assert out.shape == (8, 32, 16, 16)


@pytest.mark.benchmark(group="micro")
def test_conv2d_forward_backward(benchmark, conv_setup):
    layer, x = conv_setup
    x.requires_grad = True

    def step():
        layer.zero_grad()
        layer(x).sum().backward()

    benchmark(step)
    assert layer.weight.grad is not None


@pytest.mark.benchmark(group="micro")
def test_if_neuron_step(benchmark):
    rng = np.random.default_rng(0)
    neuron = IFNeuron(v_threshold=1.0)
    current = Tensor(rng.normal(size=(32, 64, 8, 8)))

    def step():
        neuron.reset_state()
        return neuron(current)

    out = benchmark(step)
    assert out.shape == current.shape


@pytest.mark.benchmark(group="micro")
def test_algorithm1_search(benchmark):
    rng = np.random.default_rng(0)
    percentiles = np.percentile(
        rng.exponential(scale=0.3, size=100_000), np.arange(101.0)
    )
    result = benchmark(lambda: find_scaling_factors(percentiles, 2.0, 2))
    assert 0 < result.alpha <= 1.0


@pytest.mark.benchmark(group="micro")
def test_snn_inference_pass(benchmark):
    rng = np.random.default_rng(0)
    model = vgg11(
        num_classes=10, image_size=8, width_multiplier=0.125,
        rng=np.random.default_rng(1),
    )
    loader = DataLoader(rng.random((16, 3, 8, 8)), rng.integers(0, 10, 16), 16)
    snn = convert_dnn_to_snn(model, loader, ConversionConfig(timesteps=2)).snn
    snn.eval()
    images = rng.random((16, 3, 8, 8))
    from repro.tensor import no_grad

    def infer():
        with no_grad():
            return snn(images)

    out = benchmark(infer)
    assert out.shape == (16, 10)
