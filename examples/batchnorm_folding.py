"""Convert a BatchNorm-trained network via BN folding.

The paper's own pipeline avoids BatchNorm (conversion drops biases),
but most published source networks *are* BN-trained.  The standard
bridge is BN folding: absorb each trained BN into the preceding
convolution (weights and a bias), then convert the folded, BN-free
network.  Per-step biases in the SNN act as a constant input current,
which is exactly the rate-coding equivalent of the DNN bias.

    python examples/batchnorm_folding.py
"""

import numpy as np

from repro.conversion import ConversionConfig, convert_dnn_to_snn
from repro.data import DataLoader, Normalize, synth_cifar10
from repro.nn import (
    BatchNorm2d,
    Conv2d,
    Flatten,
    Linear,
    MaxPool2d,
    Sequential,
    ThresholdReLU,
    fold_all_batchnorms,
)
from repro.train import DNNTrainConfig, DNNTrainer, evaluate_dnn, evaluate_snn


def build_bn_network(num_classes: int, rng: np.random.Generator) -> Sequential:
    """Conv-BN-ThresholdReLU stack (the common published topology)."""
    return Sequential(
        Conv2d(3, 16, 3, padding=1, bias=False, rng=rng),
        BatchNorm2d(16),
        ThresholdReLU(init_threshold=4.0),
        MaxPool2d(2),
        Conv2d(16, 32, 3, padding=1, bias=False, rng=rng),
        BatchNorm2d(32),
        ThresholdReLU(init_threshold=4.0),
        MaxPool2d(2),
        Flatten(),
        Linear(32 * 4 * 4, num_classes, bias=False, rng=rng),
    )




def main() -> None:
    dataset = synth_cifar10(image_size=16, train_size=400, test_size=120, seed=0)
    mean, std = dataset.channel_stats()
    normalize = Normalize(mean, std)
    train_loader = DataLoader(
        dataset.train_images, dataset.train_labels,
        batch_size=50, shuffle=True, transform=normalize, seed=1,
    )
    test_loader = DataLoader(
        dataset.test_images, dataset.test_labels, batch_size=60, transform=normalize
    )

    model = build_bn_network(10, np.random.default_rng(4))
    print("training the BN network ...")
    DNNTrainer(DNNTrainConfig(epochs=10, lr=0.05)).fit(
        model, train_loader, test_loader
    )
    model.eval()
    bn_accuracy = evaluate_dnn(model, test_loader)

    folded = fold_all_batchnorms(model)
    folded.eval()
    folded_accuracy = evaluate_dnn(folded, test_loader)

    calibration = DataLoader(
        dataset.train_images, dataset.train_labels,
        batch_size=50, transform=normalize,
    )
    conversion = convert_dnn_to_snn(
        folded, calibration, ConversionConfig(timesteps=3)
    )
    snn_accuracy = evaluate_snn(conversion.snn, test_loader)

    print(f"\nBN network accuracy:        {bn_accuracy * 100:6.2f}%")
    print(f"after BN folding:           {folded_accuracy * 100:6.2f}%  (must match)")
    print(f"converted SNN (T=3):        {snn_accuracy * 100:6.2f}%")


if __name__ == "__main__":
    main()
