"""Quickstart: train a DNN, convert it to a 2-step SNN, fine-tune, evaluate.

This is the paper's full hybrid-training pipeline in ~40 lines:

1. train a VGG-11 with trainable-threshold ReLUs (Eq. 1);
2. convert with the percentile-driven alpha/beta scaling (Algorithm 1);
3. fine-tune in the spiking domain with surrogate gradients (SGL);
4. report the three accuracies of a Table-I row.

Runs in about a minute on a laptop CPU (reduced-scale synthetic data).

    python examples/quickstart.py
"""

import numpy as np

from repro.conversion import ConversionConfig, convert_dnn_to_snn
from repro.data import DataLoader, Normalize, synth_cifar10
from repro.models import vgg11
from repro.train import (
    DNNTrainConfig,
    DNNTrainer,
    SNNTrainConfig,
    SNNTrainer,
    evaluate_dnn,
    evaluate_snn,
)
from repro.train.lsuv import lsuv_init

TIMESTEPS = 2


def main() -> None:
    # ------------------------------------------------------------------
    # Data: a deterministic synthetic stand-in for CIFAR-10.
    # ------------------------------------------------------------------
    dataset = synth_cifar10(image_size=16, train_size=500, test_size=150, seed=0)
    mean, std = dataset.channel_stats()
    normalize = Normalize(mean, std)
    train_loader = DataLoader(
        dataset.train_images, dataset.train_labels,
        batch_size=50, shuffle=True, transform=normalize, seed=1,
    )
    test_loader = DataLoader(
        dataset.test_images, dataset.test_labels,
        batch_size=50, transform=normalize,
    )

    # ------------------------------------------------------------------
    # 1. Train the source DNN (threshold-ReLU activations, no BN).
    # ------------------------------------------------------------------
    model = vgg11(
        num_classes=10, image_size=16, width_multiplier=0.25,
        dropout=0.05, rng=np.random.default_rng(7),
    )
    lsuv_init(model, normalize(dataset.train_images[:100], np.random.default_rng(0)))
    print("training the source DNN ...")
    DNNTrainer(DNNTrainConfig(epochs=12, lr=0.02)).fit(
        model, train_loader, test_loader, verbose=True
    )
    dnn_accuracy = evaluate_dnn(model, test_loader)

    # ------------------------------------------------------------------
    # 2. Convert: Algorithm 1 picks per-layer (alpha, beta).
    # ------------------------------------------------------------------
    calibration = DataLoader(
        dataset.train_images, dataset.train_labels,
        batch_size=50, transform=normalize,
    )
    conversion = convert_dnn_to_snn(
        model, calibration,
        ConversionConfig(timesteps=TIMESTEPS, strategy="proposed"),
    )
    print("\nper-layer scaling factors:")
    for row in conversion.report_rows():
        print(
            f"  layer {row['layer']:2d}: mu={row['mu']:.3f} "
            f"alpha={row['alpha']:.3f} beta={row['beta']:.3f} "
            f"V^th={row['v_threshold']:.3f}"
        )
    conversion_accuracy = evaluate_snn(conversion.snn, test_loader)

    # ------------------------------------------------------------------
    # 3. Fine-tune in the SNN domain (BPTT + boxcar surrogate).
    # ------------------------------------------------------------------
    print("\nfine-tuning the SNN with surrogate-gradient learning ...")
    SNNTrainer(SNNTrainConfig(epochs=4, lr=5e-4)).fit(
        conversion.snn, train_loader, test_loader, verbose=True
    )
    snn_accuracy = evaluate_snn(conversion.snn, test_loader)

    # ------------------------------------------------------------------
    # 4. The Table-I row.
    # ------------------------------------------------------------------
    print(f"\n=== results (T = {TIMESTEPS}) ===")
    print(f"(a) DNN accuracy:               {dnn_accuracy * 100:6.2f}%")
    print(f"(b) after DNN-to-SNN conversion:{conversion_accuracy * 100:6.2f}%")
    print(f"(c) after SNN (SGL) training:   {snn_accuracy * 100:6.2f}%")


if __name__ == "__main__":
    main()
