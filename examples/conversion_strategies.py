"""Compare conversion strategies across latencies (a mini Fig. 2).

Converts one trained network with every strategy in the library —
the paper's alpha/beta scaling, plain threshold-ReLU, max-activation
balancing, Deng-style optimal shift, and the grid-scaling heuristic —
and prints conversion-only accuracy across a sweep of T.

    python examples/conversion_strategies.py
"""

import numpy as np

from repro.conversion import STRATEGIES, ConversionConfig, convert_dnn_to_snn
from repro.data import DataLoader, Normalize, synth_cifar10
from repro.experiments import format_table
from repro.models import vgg11
from repro.train import DNNTrainConfig, DNNTrainer, evaluate_dnn, evaluate_snn
from repro.train.lsuv import lsuv_init

TIMESTEPS = (1, 2, 3, 5, 8, 16)


def main() -> None:
    dataset = synth_cifar10(image_size=16, train_size=400, test_size=120, seed=0)
    mean, std = dataset.channel_stats()
    normalize = Normalize(mean, std)
    train_loader = DataLoader(
        dataset.train_images, dataset.train_labels,
        batch_size=50, shuffle=True, transform=normalize, seed=1,
    )
    test_loader = DataLoader(
        dataset.test_images, dataset.test_labels, batch_size=60, transform=normalize
    )

    model = vgg11(
        num_classes=10, image_size=16, width_multiplier=0.25,
        dropout=0.05, rng=np.random.default_rng(3),
    )
    lsuv_init(model, normalize(dataset.train_images[:100], np.random.default_rng(0)))
    print("training the source DNN ...")
    DNNTrainer(DNNTrainConfig(epochs=12, lr=0.02)).fit(model, train_loader, test_loader)
    dnn_accuracy = evaluate_dnn(model, test_loader)
    print(f"DNN accuracy: {dnn_accuracy * 100:.2f}%\n")

    strategies = sorted(STRATEGIES)
    rows = []
    for timesteps in TIMESTEPS:
        row = [timesteps]
        for strategy in strategies:
            calibration = DataLoader(
                dataset.train_images, dataset.train_labels,
                batch_size=50, transform=normalize,
            )
            conversion = convert_dnn_to_snn(
                model, calibration,
                ConversionConfig(timesteps=timesteps, strategy=strategy),
            )
            row.append(evaluate_snn(conversion.snn, test_loader) * 100.0)
        rows.append(row)

    print(format_table(
        ["T"] + strategies + ["DNN ref"],
        [r + [dnn_accuracy * 100.0] for r in rows],
        title="conversion-only accuracy (%) by strategy and latency",
    ))
    print(
        "\nExpected shape (paper Fig. 2): prior rules collapse at T <= 5;\n"
        "the proposed alpha/beta scaling degrades gracefully and dominates\n"
        "at T in {2, 3}."
    )


if __name__ == "__main__":
    main()
