"""Estimate a neuromorphic deployment of a converted SNN.

Extends the paper's Section-VI energy analysis to the deployment
itself: map the converted network onto a TrueNorth-style grid of
256-neuron/256-axon cores, report cores, synapses, mesh traffic and a
deployment-aware energy estimate, then sweep weight precision to see
how few bits the 2-step model really needs.

    python examples/neuromorphic_deployment.py
"""

import numpy as np

from repro.conversion import ConversionConfig, convert_dnn_to_snn
from repro.data import DataLoader, Normalize, synth_cifar10
from repro.experiments import format_table
from repro.hw import CoreSpec, map_network, precision_sweep
from repro.models import vgg11
from repro.train import DNNTrainConfig, DNNTrainer, evaluate_snn
from repro.train.lsuv import lsuv_init


def main() -> None:
    dataset = synth_cifar10(image_size=16, train_size=400, test_size=120, seed=0)
    mean, std = dataset.channel_stats()
    normalize = Normalize(mean, std)
    train_loader = DataLoader(
        dataset.train_images, dataset.train_labels,
        batch_size=50, shuffle=True, transform=normalize, seed=1,
    )
    test_loader = DataLoader(
        dataset.test_images, dataset.test_labels, batch_size=60, transform=normalize
    )

    model = vgg11(
        num_classes=10, image_size=16, width_multiplier=0.25,
        dropout=0.0, rng=np.random.default_rng(7),
    )
    lsuv_init(model, normalize(dataset.train_images[:100], np.random.default_rng(0)))
    print("training the source DNN ...")
    DNNTrainer(DNNTrainConfig(epochs=12, lr=0.015)).fit(model, train_loader)

    def fresh_snn(timesteps=2):
        calibration = DataLoader(
            dataset.train_images, dataset.train_labels,
            batch_size=50, transform=normalize,
        )
        return convert_dnn_to_snn(
            model, calibration, ConversionConfig(timesteps=timesteps)
        ).snn

    snn = fresh_snn()
    print(f"SNN accuracy @T=2: {evaluate_snn(snn, test_loader) * 100:.1f}%\n")

    sample_images, _ = next(iter(test_loader))
    deployment = map_network(snn, sample_images, CoreSpec())

    rows = [
        [l.name, l.neurons, l.fan_in, l.cores, f"{l.synaptic_events:.3g}",
         f"{l.mesh_messages:.3g}"]
        for l in deployment.layers
    ]
    print(format_table(
        ["layer", "neurons", "fan-in", "cores", "syn events/inf", "mesh msgs/inf"],
        rows,
        title="TrueNorth-style deployment (256 neurons / 256 axons per core)",
    ))
    print(f"\ntotal cores:    {deployment.total_cores}")
    print(f"total synapses: {deployment.total_synapses:.3e}")
    print(f"deployment energy (normalised): {deployment.energy():.4g}")

    print("\nweight-precision sweep (accuracy after symmetric quantization):")
    results = precision_sweep(
        fresh_snn,
        lambda network: evaluate_snn(network, test_loader),
        bit_widths=(2, 3, 4, 6, 8),
    )
    print(format_table(
        ["bits", "accuracy %"],
        [[bits, accuracy * 100.0] for bits, accuracy in results],
    ))


if __name__ == "__main__":
    main()
