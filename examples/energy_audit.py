"""Energy audit: spikes, FLOPs and compute energy of a converted SNN.

Reproduces the Section-VI accounting on a small VGG: measures per-layer
spiking activity, derives the spike-scaled FLOP counts, and prices them
with the 45 nm CMOS model (E_MAC = 3.2 pJ, E_AC = 0.1 pJ) plus the
normalised TrueNorth / SpiNNaker estimates.

    python examples/energy_audit.py
"""

import numpy as np

from repro.conversion import ConversionConfig, convert_dnn_to_snn
from repro.data import DataLoader, Normalize, synth_cifar10
from repro.energy import (
    EnergyModel,
    measure_spiking_activity,
    neuromorphic_energy,
    snn_layer_flops,
    snn_total_flops,
    trace_weight_layers,
)
from repro.models import vgg11
from repro.train import DNNTrainConfig, DNNTrainer
from repro.train.lsuv import lsuv_init


def main() -> None:
    dataset = synth_cifar10(image_size=16, train_size=300, test_size=100, seed=0)
    mean, std = dataset.channel_stats()
    normalize = Normalize(mean, std)
    loader = DataLoader(
        dataset.train_images, dataset.train_labels,
        batch_size=50, shuffle=True, transform=normalize, seed=1,
    )
    test_loader = DataLoader(
        dataset.test_images, dataset.test_labels, batch_size=50, transform=normalize
    )

    model = vgg11(
        num_classes=10, image_size=16, width_multiplier=0.25,
        dropout=0.05, rng=np.random.default_rng(7),
    )
    lsuv_init(model, normalize(dataset.train_images[:100], np.random.default_rng(0)))
    print("training a small source DNN ...")
    DNNTrainer(DNNTrainConfig(epochs=8, lr=0.02)).fit(model, loader)

    energy_model = EnergyModel()
    input_shape = dataset.input_shape
    dnn_records = trace_weight_layers(model, input_shape)
    dnn_flops = sum(r.macs for r in dnn_records)
    dnn_energy = energy_model.dnn_energy(dnn_records)
    print(f"\nDNN: {dnn_flops:.3e} MACs -> {dnn_energy * 1e6:.3f} uJ / image")

    for timesteps in (2, 3, 5):
        conversion = convert_dnn_to_snn(
            model,
            DataLoader(dataset.train_images, dataset.train_labels,
                       batch_size=50, transform=normalize),
            ConversionConfig(timesteps=timesteps),
        )
        activity = measure_spiking_activity(
            conversion.snn, test_loader, max_batches=2
        )
        records = snn_layer_flops(
            conversion.snn, input_shape,
            activity.rates_by_neuron_id(conversion.snn),
        )
        total = snn_total_flops(records)
        energy = energy_model.snn_energy(records)
        print(f"\nSNN @ T={timesteps}")
        print(f"  avg spikes/neuron/inference: {activity.average_spikes_per_neuron:.3f}")
        print("  per-layer spike rates: "
              + " ".join(f"{l.spikes_per_neuron:.2f}" for l in activity.layers))
        print(f"  total ops: {total:.3e} (first layer = MACs x T, rest = ACs)")
        print(f"  compute energy: {energy * 1e6:.4f} uJ / image "
              f"({dnn_energy / energy:.1f}x below the DNN)")
        print(f"  TrueNorth (norm.): {neuromorphic_energy(total, timesteps, 'truenorth'):.3e}")
        print(f"  SpiNNaker (norm.): {neuromorphic_energy(total, timesteps, 'spinnaker'):.3e}")


if __name__ == "__main__":
    main()
