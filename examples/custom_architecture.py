"""Convert a custom architecture you define yourself.

The converter handles any network composed from the library's layers:
Sequential pipelines, conv/linear/pool/flatten/dropout and
threshold-ReLU activations — plus ResNet basic blocks.  This example
registers a small custom CNN, trains it, converts it at T = 3, and
inspects the resulting spiking network structure.

    python examples/custom_architecture.py
"""

import numpy as np

from repro.conversion import ConversionConfig, convert_dnn_to_snn
from repro.data import DataLoader, Normalize, synth_cifar10
from repro.models import build_model, register_model
from repro.nn import (
    Conv2d,
    Dropout,
    Flatten,
    Linear,
    MaxPool2d,
    Module,
    Sequential,
    ThresholdReLU,
)
from repro.snn import SpikingMaxPool, SpikingNeuron, StepWrapper
from repro.tensor import Tensor
from repro.train import DNNTrainConfig, DNNTrainer, SNNTrainConfig, SNNTrainer, evaluate_snn
from repro.train.lsuv import lsuv_init


class TinyConvNet(Module):
    """A 3-conv CNN with threshold-ReLU activations (conversion-ready)."""

    def __init__(self, num_classes: int = 10, rng=None) -> None:
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng()
        self.body = Sequential(
            Conv2d(3, 16, 3, padding=1, bias=False, rng=rng),
            ThresholdReLU(init_threshold=4.0),
            MaxPool2d(2),
            Conv2d(16, 32, 3, padding=1, bias=False, rng=rng),
            ThresholdReLU(init_threshold=4.0),
            MaxPool2d(2),
            Conv2d(32, 32, 3, padding=1, bias=False, rng=rng),
            ThresholdReLU(init_threshold=4.0),
            Dropout(0.05, rng=np.random.default_rng(0)),
            Flatten(),
            Linear(32 * 4 * 4, num_classes, bias=False, rng=rng),
        )

    def forward(self, x: Tensor) -> Tensor:
        return self.body(x)


def main() -> None:
    register_model("tiny-convnet", lambda **kw: TinyConvNet(**kw))
    model = build_model("tiny-convnet", num_classes=10, rng=np.random.default_rng(11))

    dataset = synth_cifar10(image_size=16, train_size=400, test_size=120, seed=2)
    mean, std = dataset.channel_stats()
    normalize = Normalize(mean, std)
    train_loader = DataLoader(
        dataset.train_images, dataset.train_labels,
        batch_size=50, shuffle=True, transform=normalize, seed=1,
    )
    test_loader = DataLoader(
        dataset.test_images, dataset.test_labels, batch_size=60, transform=normalize
    )

    lsuv_init(model, normalize(dataset.train_images[:100], np.random.default_rng(0)))
    print("training TinyConvNet ...")
    DNNTrainer(DNNTrainConfig(epochs=10, lr=0.02)).fit(model, train_loader, test_loader)

    conversion = convert_dnn_to_snn(
        model,
        DataLoader(dataset.train_images, dataset.train_labels,
                   batch_size=50, transform=normalize),
        ConversionConfig(timesteps=3),
    )
    snn = conversion.snn

    print("\nspiking twin structure:")
    for module in snn.modules():
        if isinstance(module, SpikingNeuron):
            print(f"  neuron: {module.extra_repr()}")
        elif isinstance(module, StepWrapper):
            print(f"  step:   {module.extra_repr()}")
        elif isinstance(module, SpikingMaxPool):
            print(f"  pool:   gated max, {module.extra_repr()}")

    print(f"\nconversion-only accuracy @T=3: "
          f"{evaluate_snn(snn, test_loader) * 100:.2f}%")
    SNNTrainer(SNNTrainConfig(epochs=3, lr=1e-3)).fit(snn, train_loader, test_loader)
    print(f"after SGL fine-tuning:          "
          f"{evaluate_snn(snn, test_loader) * 100:.2f}%")


if __name__ == "__main__":
    main()
