"""Train a spiking CNN *directly* on event-camera data (no conversion).

The paper's pipeline converts image-trained DNNs, but SNNs' native
domain is asynchronous event streams.  This example builds a small
spiking CNN from the substrate primitives, feeds it synthetic DVS-style
motion events through the :class:`PassthroughEncoder` (the data already
*is* spikes), and trains it from scratch with surrogate-gradient
learning — the fully-spiking workflow.

    python examples/event_stream_classification.py
"""

import numpy as np

from repro.data import DataLoader, synth_dvs
from repro.nn import Conv2d, Flatten, Linear
from repro.snn import (
    IFNeuron,
    PassthroughEncoder,
    SpikingNetwork,
    SpikingSequential,
    StepWrapper,
)
from repro.train import SNNTrainConfig, SNNTrainer, evaluate_snn

TIMESTEPS = 8


def build_spiking_cnn(num_classes: int, rng: np.random.Generator) -> SpikingNetwork:
    """A 2-conv spiking CNN consuming 2-channel (ON/OFF) event frames."""
    body = SpikingSequential(
        StepWrapper(Conv2d(2, 8, 3, padding=1, bias=False, rng=rng)),
        IFNeuron(v_threshold=1.0, surrogate="boxcar"),
        StepWrapper(Conv2d(8, 16, 3, stride=2, padding=1, bias=False, rng=rng)),
        IFNeuron(v_threshold=1.0, surrogate="boxcar"),
        StepWrapper(Flatten()),
        StepWrapper(Linear(16 * 8 * 8, num_classes, bias=False, rng=rng)),
    )
    return SpikingNetwork(body, timesteps=TIMESTEPS, encoder=PassthroughEncoder())


def main() -> None:
    dataset = synth_dvs(
        num_classes=4, timesteps=TIMESTEPS, image_size=16,
        train_size=240, test_size=80, seed=0,
    )
    train_loader = DataLoader(
        dataset.train_events, dataset.train_labels,
        batch_size=40, shuffle=True, seed=1,
    )
    test_loader = DataLoader(dataset.test_events, dataset.test_labels, batch_size=40)

    snn = build_spiking_cnn(dataset.num_classes, np.random.default_rng(3))
    print(f"chance accuracy: {100.0 / dataset.num_classes:.1f}%")
    print(f"before training: {evaluate_snn(snn, test_loader) * 100:.1f}%")

    trainer = SNNTrainer(
        SNNTrainConfig(epochs=8, lr=2e-3, train_leaks=True)
    )
    trainer.fit(snn, train_loader, test_loader, verbose=True)
    accuracy = evaluate_snn(snn, test_loader)
    print(f"\nevent-stream test accuracy: {accuracy * 100:.1f}% "
          f"(T = {TIMESTEPS}, fully spiking input)")


if __name__ == "__main__":
    main()
