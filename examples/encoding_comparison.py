"""Compare input encodings: direct vs Poisson rate vs time-to-first-spike.

The paper adopts *direct* encoding (analog pixels into the first conv
at every step) because it reaches usable accuracy at an order of
magnitude fewer time steps than rate coding.  This example converts one
trained network and evaluates it under each encoder across latencies —
direct encoding should dominate at low T, with rate coding slowly
catching up as T grows.

    python examples/encoding_comparison.py
"""

import numpy as np

from repro.conversion import ConversionConfig, convert_dnn_to_snn
from repro.data import DataLoader, Normalize, synth_cifar10
from repro.experiments import format_table
from repro.models import vgg11
from repro.snn import DirectEncoder, PoissonEncoder, TTFSEncoder
from repro.train import DNNTrainConfig, DNNTrainer, evaluate_dnn, evaluate_snn
from repro.train.lsuv import lsuv_init


def main() -> None:
    dataset = synth_cifar10(image_size=16, train_size=400, test_size=120, seed=0)
    mean, std = dataset.channel_stats()
    normalize = Normalize(mean, std)
    train_loader = DataLoader(
        dataset.train_images, dataset.train_labels,
        batch_size=50, shuffle=True, transform=normalize, seed=1,
    )
    test_loader = DataLoader(
        dataset.test_images, dataset.test_labels, batch_size=60, transform=normalize
    )
    # Rate/TTFS encoders need inputs in [0, 1]: evaluate them on the raw
    # (un-normalised) images.
    raw_test_loader = DataLoader(
        dataset.test_images, dataset.test_labels, batch_size=60
    )

    model = vgg11(
        num_classes=10, image_size=16, width_multiplier=0.25,
        dropout=0.05, rng=np.random.default_rng(5),
    )
    lsuv_init(model, normalize(dataset.train_images[:100], np.random.default_rng(0)))
    print("training the source DNN ...")
    DNNTrainer(DNNTrainConfig(epochs=12, lr=0.02)).fit(model, train_loader, test_loader)
    print(f"DNN accuracy: {evaluate_dnn(model, test_loader) * 100:.2f}%\n")

    encoders = {
        "direct": (DirectEncoder(), test_loader),
        "poisson": (PoissonEncoder(rng=np.random.default_rng(0)), raw_test_loader),
        "ttfs": (TTFSEncoder(), raw_test_loader),
    }
    rows = []
    for timesteps in (2, 4, 8, 16):
        row = [timesteps]
        for name, (encoder, loader) in encoders.items():
            conversion = convert_dnn_to_snn(
                model,
                DataLoader(dataset.train_images, dataset.train_labels,
                           batch_size=50, transform=normalize),
                ConversionConfig(timesteps=timesteps),
                encoder=encoder,
            )
            row.append(evaluate_snn(conversion.snn, loader) * 100.0)
        rows.append(row)

    print(format_table(
        ["T", "direct", "poisson", "ttfs"],
        rows,
        title="conversion accuracy (%) by input encoding",
    ))
    print(
        "\nDirect encoding dominates at low T — the reason the paper (and\n"
        "the DIET-SNN line of work) feeds analog pixels to the first layer."
    )


if __name__ == "__main__":
    main()
